package graph

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func mustAddNodes(t *testing.T, g *Graph, ids ...string) {
	t.Helper()
	for _, id := range ids {
		if err := g.AddNode(id, Attrs{"name": id}); err != nil {
			t.Fatalf("AddNode(%s): %v", id, err)
		}
	}
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a")
	if err := g.AddNode("a", nil); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("want ErrDuplicateNode, got %v", err)
	}
}

func TestNodeCopySemantics(t *testing.T) {
	g := New()
	attrs := Attrs{"k": "v"}
	mustAddNodesAttrs(t, g, "a", attrs)
	attrs["k"] = "mutated-by-caller"
	n, ok := g.Node("a")
	if !ok || n.Attrs["k"] != "v" {
		t.Fatalf("attrs not copied at boundary: %+v", n)
	}
	n.Attrs["k"] = "mutated-by-reader"
	n2, _ := g.Node("a")
	if n2.Attrs["k"] != "v" {
		t.Fatal("reader mutation leaked into store")
	}
}

func mustAddNodesAttrs(t *testing.T, g *Graph, id string, attrs Attrs) {
	t.Helper()
	if err := g.AddNode(id, attrs); err != nil {
		t.Fatal(err)
	}
}

func TestSetAttr(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a")
	if err := g.SetAttr("a", "source", "snyk"); err != nil {
		t.Fatal(err)
	}
	n, _ := g.Node("a")
	if n.Attrs["source"] != "snyk" {
		t.Fatalf("attr not set: %+v", n.Attrs)
	}
	if err := g.SetAttr("missing", "k", "v"); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("want ErrNodeNotFound, got %v", err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a", "b")
	if err := g.AddEdge("a", "a", Similar, nil); err == nil {
		t.Fatal("self-loop must be rejected")
	}
	if err := g.AddEdge("a", "zzz", Similar, nil); !errors.Is(err, ErrNodeNotFound) {
		t.Fatalf("want ErrNodeNotFound, got %v", err)
	}
	if err := g.AddEdge("a", "b", Similar, nil); err != nil {
		t.Fatal(err)
	}
	// Idempotent duplicate, also reversed for undirected type.
	if err := g.AddEdge("b", "a", Similar, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeCount(Similar); got != 1 {
		t.Fatalf("undirected duplicate stored twice: %d", got)
	}
}

func TestDirectedDependencyEdges(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "front", "dep")
	if err := g.AddEdge("front", "dep", Dependency, nil); err != nil {
		t.Fatal(err)
	}
	// Reverse direction is a distinct dependency edge.
	if err := g.AddEdge("dep", "front", Dependency, nil); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeCount(Dependency); got != 2 {
		t.Fatalf("directed edges collapsed: %d", got)
	}
	if !g.HasEdge("front", "dep", Dependency) {
		t.Fatal("HasEdge must see directed edge")
	}
	if got := g.InDegree("dep", Dependency); got != 1 {
		t.Fatalf("InDegree(dep) = %d", got)
	}
	if out := g.OutNeighbors("front", Dependency); len(out) != 1 || out[0] != "dep" {
		t.Fatalf("OutNeighbors = %v", out)
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "m", "c", "a", "b")
	for _, n := range []string{"c", "a", "b"} {
		if err := g.AddEdge("m", n, Similar, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Neighbors("m", Similar)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("neighbors = %v", got)
		}
	}
}

func TestComponentsByType(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a", "b", "c", "d", "e")
	_ = g.AddEdge("a", "b", Similar, nil)
	_ = g.AddEdge("c", "d", Dependency, nil)

	simComponents := g.ComponentsMin(2, Similar)
	if len(simComponents) != 1 || len(simComponents[0]) != 2 {
		t.Fatalf("similar components = %v", simComponents)
	}
	depComponents := g.ComponentsMin(2, Dependency)
	if len(depComponents) != 1 || depComponents[0][0] != "c" {
		t.Fatalf("dependency components = %v", depComponents)
	}
	all := g.Components()
	if len(all) != 3 { // {a,b}, {c,d}, {e}
		t.Fatalf("all components = %v", all)
	}
}

func TestComponentsPartition(t *testing.T) {
	// Property: Components() is a partition of the node set.
	f := func(edgesRaw []uint16, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		g := New()
		for i := 0; i < n; i++ {
			if err := g.AddNode(fmt.Sprintf("n%02d", i), nil); err != nil {
				return false
			}
		}
		for _, e := range edgesRaw {
			from := fmt.Sprintf("n%02d", int(e)%n)
			to := fmt.Sprintf("n%02d", int(e>>8)%n)
			if from == to {
				continue
			}
			if err := g.AddEdge(from, to, Similar, nil); err != nil {
				return false
			}
		}
		comps := g.Components(Similar)
		seen := map[string]int{}
		for _, c := range comps {
			for _, id := range c {
				seen[id]++
			}
		}
		if len(seen) != n {
			return false
		}
		for _, count := range seen {
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsTransitivity(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a", "b", "c")
	_ = g.AddEdge("a", "b", Duplicated, nil)
	_ = g.AddEdge("b", "c", Duplicated, nil)
	comps := g.ComponentsMin(2, Duplicated)
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("duplicated must be transitive via components: %v", comps)
	}
}

func TestEdgesFilter(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a", "b", "c")
	_ = g.AddEdge("a", "b", Similar, Attrs{"sim": "0.99"})
	_ = g.AddEdge("b", "c", Coexisting, nil)
	if got := len(g.Edges()); got != 2 {
		t.Fatalf("Edges() = %d", got)
	}
	sim := g.Edges(Similar)
	if len(sim) != 1 || sim[0].Attrs["sim"] != "0.99" {
		t.Fatalf("Edges(Similar) = %v", sim)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := New()
	mustAddNodes(t, g, "a", "b", "c")
	_ = g.AddEdge("a", "b", Similar, Attrs{"sim": "0.9"})
	_ = g.AddEdge("b", "c", Dependency, nil)

	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NodeCount() != 3 || g2.EdgeCount() != 2 {
		t.Fatalf("round trip lost data: %d nodes %d edges", g2.NodeCount(), g2.EdgeCount())
	}
	if !g2.HasEdge("a", "b", Similar) || !g2.HasEdge("b", "c", Dependency) {
		t.Fatal("edges lost in round trip")
	}
	var buf2 bytes.Buffer
	if err := g2.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.Len() == 0 {
		t.Fatal("second serialisation empty")
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(pairs []uint16, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		g := New()
		for i := 0; i < n; i++ {
			_ = g.AddNode(fmt.Sprintf("p%d", i), Attrs{"i": fmt.Sprint(i)})
		}
		for _, p := range pairs {
			a := fmt.Sprintf("p%d", int(p)%n)
			b := fmt.Sprintf("p%d", int(p>>8)%n)
			if a == b {
				continue
			}
			_ = g.AddEdge(a, b, EdgeTypes()[int(p)%4], nil)
		}
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		g2, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		return g2.NodeCount() == g.NodeCount() && g2.EdgeCount() == g.EdgeCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestConcurrentAccess(t *testing.T) {
	g := New()
	const n = 200
	for i := 0; i < n; i++ {
		if err := g.AddNode(fmt.Sprintf("n%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n-1; i++ {
				if w%2 == 0 {
					_ = g.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1), Similar, nil)
				} else {
					_ = g.Neighbors(fmt.Sprintf("n%d", i), Similar)
					_ = g.Components(Similar)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := g.EdgeCount(Similar); got != n-1 {
		t.Fatalf("concurrent adds deduplicated wrong: %d", got)
	}
	comps := g.Components(Similar)
	if len(comps) != 1 {
		t.Fatalf("expected one chain component, got %d", len(comps))
	}
}

func TestNodesWhere(t *testing.T) {
	g := New()
	_ = g.AddNode("a", Attrs{"eco": "PyPI"})
	_ = g.AddNode("b", Attrs{"eco": "NPM"})
	_ = g.AddNode("c", Attrs{"eco": "PyPI"})
	got := g.NodesWhere(func(n Node) bool { return n.Attrs["eco"] == "PyPI" })
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("NodesWhere = %v", got)
	}
}

func TestEdgeTypeString(t *testing.T) {
	if Duplicated.String() != "duplicated" || Coexisting.String() != "coexisting" {
		t.Fatal("edge type names wrong")
	}
	if EdgeType(99).String() != "EdgeType(99)" {
		t.Fatal("unknown edge type formatting wrong")
	}
}

func TestRemoveEdgesWhere(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddEdge("a", "b", Similar, Attrs{"cluster": "x"})
	_ = g.AddEdge("b", "c", Similar, Attrs{"cluster": "x"})
	_ = g.AddEdge("c", "d", Coexisting, nil)
	_ = g.AddEdge("a", "d", Dependency, nil)

	// Predicate scoped to one endpoint prefix; Coexisting/Dependency untouched.
	removed := g.RemoveEdgesWhere(Similar, func(e Edge) bool { return e.From == "a" || e.To == "a" })
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if g.HasEdge("a", "b", Similar) {
		t.Fatal("a-b similar edge survived removal")
	}
	if !g.HasEdge("b", "c", Similar) || !g.HasEdge("c", "d", Coexisting) || !g.HasEdge("a", "d", Dependency) {
		t.Fatal("unrelated edges were removed")
	}
	if got := g.EdgeCount(Similar); got != 1 {
		t.Fatalf("similar count after removal = %d", got)
	}
	if got := g.EdgeCount(); got != 3 {
		t.Fatalf("total count after removal = %d", got)
	}
	// Adjacency must be rebuilt: neighbors reflect the surviving edges only.
	if nb := g.Neighbors("a", Similar); len(nb) != 0 {
		t.Fatalf("a similar neighbors = %v", nb)
	}
	if nb := g.Neighbors("b", Similar); len(nb) != 1 || nb[0] != "c" {
		t.Fatalf("b similar neighbors = %v", nb)
	}
	// Removal must allow idempotent re-insertion.
	if err := g.AddEdge("a", "b", Similar, Attrs{"cluster": "y"}); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("b", "a", Similar) {
		t.Fatal("re-added edge missing")
	}
	// Components over Similar: {a,b,c} chain again after re-insertion.
	comps := g.ComponentsMin(2, Similar)
	if len(comps) != 1 || len(comps[0]) != 3 {
		t.Fatalf("components after re-add = %v", comps)
	}
}

func TestRemoveEdgesWhereNoMatch(t *testing.T) {
	g := New()
	_ = g.AddNode("a", nil)
	_ = g.AddNode("b", nil)
	_ = g.AddEdge("a", "b", Similar, nil)
	if removed := g.RemoveEdgesWhere(Similar, func(Edge) bool { return false }); removed != 0 {
		t.Fatalf("removed = %d", removed)
	}
	if !g.HasEdge("a", "b", Similar) {
		t.Fatal("edge lost on no-op removal")
	}
}

func TestRemoveEdgesIncident(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		if err := g.AddNode(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddEdge("a", "b", Similar, Attrs{"cluster": "x"})
	_ = g.AddEdge("b", "c", Similar, Attrs{"cluster": "x"})
	_ = g.AddEdge("d", "e", Similar, Attrs{"cluster": "y"})
	_ = g.AddEdge("a", "d", Coexisting, nil)
	_ = g.AddEdge("a", "b", Dependency, nil)

	// Dropping partition {a,b,c} must take both its similar edges — and
	// nothing else, even where the nodes carry other edge types.
	if removed := g.RemoveEdgesIncident(Similar, []string{"a", "b", "c"}); removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	if g.HasEdge("a", "b", Similar) || g.HasEdge("b", "c", Similar) {
		t.Fatal("partition edges survived")
	}
	if !g.HasEdge("d", "e", Similar) || !g.HasEdge("a", "d", Coexisting) || !g.HasEdge("a", "b", Dependency) {
		t.Fatal("unrelated edges were removed")
	}
	if got := g.EdgeCount(Similar); got != 1 {
		t.Fatalf("similar count = %d", got)
	}
	if got := g.EdgeCount(); got != 3 {
		t.Fatalf("total count = %d", got)
	}
	// Tombstoned slots must be invisible everywhere: adjacency, edge dumps,
	// serialisation, components.
	if nb := g.Neighbors("b", Similar); len(nb) != 0 {
		t.Fatalf("b similar neighbors = %v", nb)
	}
	if edges := g.Edges(); len(edges) != 3 {
		t.Fatalf("Edges() = %d", len(edges))
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.EdgeCount(); got != 3 {
		t.Fatalf("round-tripped count = %d", got)
	}
	if comps := g.ComponentsMin(2, Similar); len(comps) != 1 || len(comps[0]) != 2 {
		t.Fatalf("similar components = %v", comps)
	}
	// Removed edges must re-insert cleanly (fresh attrs, fresh slot).
	if err := g.AddEdge("a", "b", Similar, Attrs{"cluster": "z"}); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge("b", "a", Similar) {
		t.Fatal("re-added edge missing")
	}
	// A later RemoveEdgesWhere must reclaim tombstones without recounting
	// them.
	if removed := g.RemoveEdgesIncident(Similar, []string{"d"}); removed != 1 {
		t.Fatalf("second removal = %d", removed)
	}
	if removed := g.RemoveEdgesWhere(Coexisting, func(Edge) bool { return true }); removed != 1 {
		t.Fatalf("coexisting removal = %d", removed)
	}
	if got := g.EdgeCount(); got != 2 {
		t.Fatalf("final total = %d", got)
	}
}

func TestRemoveEdgesIncidentNoMatch(t *testing.T) {
	g := New()
	_ = g.AddNode("a", nil)
	_ = g.AddNode("b", nil)
	_ = g.AddEdge("a", "b", Similar, nil)
	if removed := g.RemoveEdgesIncident(Similar, []string{"zzz"}); removed != 0 {
		t.Fatalf("removed = %d", removed)
	}
	if removed := g.RemoveEdgesIncident(Coexisting, []string{"a"}); removed != 0 {
		t.Fatalf("wrong-type removed = %d", removed)
	}
	if !g.HasEdge("a", "b", Similar) || g.EdgeCount() != 1 {
		t.Fatal("no-op removal mutated the graph")
	}
}

// TestRemoveEdgesIncidentCompaction drives enough tombstone churn to cross
// the compaction threshold and checks the graph stays consistent through it.
func TestRemoveEdgesIncidentCompaction(t *testing.T) {
	g := New()
	const n = 2100 // > 2×1024 so tombstones can exceed the compaction floor
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("n%04d", i)
		if err := g.AddNode(ids[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	addAll := func() {
		for i := 0; i+1 < n; i += 2 {
			if err := g.AddEdge(ids[i], ids[i+1], Similar, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	addAll()
	if removed := g.RemoveEdgesIncident(Similar, ids); removed != n/2 {
		t.Fatalf("removed = %d", removed)
	}
	if got := g.EdgeCount(); got != 0 {
		t.Fatalf("count after mass removal = %d", got)
	}
	// Re-add and remove again: the second wave crosses the dead threshold
	// and compacts; every index must survive.
	addAll()
	if removed := g.RemoveEdgesIncident(Similar, ids[:n/2]); removed != n/4 {
		t.Fatalf("second wave removed = %d", removed)
	}
	if got := g.EdgeCount(Similar); got != n/2-n/4 {
		t.Fatalf("similar after second wave = %d", got)
	}
	if comps := g.ComponentsMin(2, Similar); len(comps) != n/4 {
		t.Fatalf("components = %d", len(comps))
	}
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.EdgeCount(); got != n/4 {
		t.Fatalf("round-trip count = %d", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	for _, id := range []string{"a", "b", "c"} {
		if err := g.AddNode(id, nil); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(from, to string, et EdgeType, attrs Attrs) {
		t.Helper()
		if err := g.AddEdge(from, to, et, attrs); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge("a", "b", Coexisting, Attrs{"report": "r1"})
	mustEdge("b", "c", Coexisting, Attrs{"report": "r1"})
	mustEdge("a", "b", Similar, Attrs{"cluster": "x"})
	mustEdge("a", "b", Dependency, Attrs{"dep": "b"})

	// Reversed endpoints resolve the same undirected edge.
	if !g.RemoveEdge("b", "a", Coexisting) {
		t.Fatal("undirected removal by reversed endpoints failed")
	}
	if g.HasEdge("a", "b", Coexisting) {
		t.Fatal("edge survives removal")
	}
	// Other types between the same endpoints are untouched.
	if !g.HasEdge("a", "b", Similar) || !g.HasEdge("a", "b", Dependency) {
		t.Fatal("removal bled into other edge types")
	}
	if got := g.EdgeCount(Coexisting); got != 1 {
		t.Fatalf("coexisting count = %d, want 1", got)
	}
	// Neighbors reflect the filtered adjacency, and the slot can be rewritten
	// with fresh attrs — the ownership-repair pattern.
	if nb := g.Neighbors("a", Coexisting); len(nb) != 0 {
		t.Fatalf("a still has coexisting neighbors: %v", nb)
	}
	mustEdge("a", "b", Coexisting, Attrs{"report": "r0"})
	for _, e := range g.Edges(Coexisting) {
		if (e.From == "a" || e.To == "a") && e.Attrs["report"] != "r0" {
			t.Fatalf("re-added edge kept stale attrs: %v", e.Attrs)
		}
	}
	// Dependency edges are directed: the reverse orientation is not it.
	if g.RemoveEdge("b", "a", Dependency) {
		t.Fatal("directed edge removed via reverse orientation")
	}
	if !g.RemoveEdge("a", "b", Dependency) {
		t.Fatal("directed removal failed")
	}
	// Removing a missing edge reports false and changes nothing.
	if g.RemoveEdge("a", "c", Coexisting) {
		t.Fatal("phantom removal reported true")
	}
	if got := g.EdgeCount(); got != 3 {
		t.Fatalf("total edges = %d, want 3", got)
	}
	// Tombstones are invisible to serialisation.
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	rt, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.EdgeCount(); got != 3 {
		t.Fatalf("round-trip count = %d, want 3", got)
	}
}
