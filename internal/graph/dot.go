package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDOT serialises the graph (optionally restricted to some edge types)
// in Graphviz DOT format for visual inspection — the closest stdlib-only
// analogue to browsing MALGRAPH in the Neo4j UI. Nodes are labelled with
// their "name" attribute when present; edge colours encode the type.
func (g *Graph) WriteDOT(w io.Writer, types ...EdgeType) error {
	if len(types) == 0 {
		types = EdgeTypes()
	}
	wanted := make(map[EdgeType]bool, len(types))
	for _, t := range types {
		wanted[t] = true
	}
	edges := g.Edges(types...)

	// Only emit nodes that participate in a selected edge; full corpora have
	// tens of thousands of isolated nodes that would swamp the drawing.
	used := make(map[string]bool)
	for _, e := range edges {
		used[e.From] = true
		used[e.To] = true
	}
	ids := make([]string, 0, len(used))
	for id := range used {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if _, err := fmt.Fprintln(w, "graph malgraph {"); err != nil {
		return err
	}
	for _, id := range ids {
		label := id
		if n, ok := g.Node(id); ok && n.Attrs["name"] != "" {
			label = n.Attrs["name"]
		}
		if _, err := fmt.Fprintf(w, "  %q [label=%q];\n", id, label); err != nil {
			return err
		}
	}
	colors := map[EdgeType]string{
		Duplicated: "gray",
		Similar:    "blue",
		Dependency: "red",
		Coexisting: "green",
	}
	for _, e := range edges {
		connector := "--"
		extra := ""
		if e.Type == Dependency {
			extra = ", dir=forward" // dependency edges are directed
		}
		if _, err := fmt.Fprintf(w, "  %q %s %q [color=%s%s];\n",
			e.From, connector, e.To, colors[e.Type], extra); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// DOTString is a convenience wrapper returning the DOT text.
func (g *Graph) DOTString(types ...EdgeType) string {
	var b strings.Builder
	_ = g.WriteDOT(&b, types...)
	return b.String()
}
