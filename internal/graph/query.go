package graph

import (
	"sort"
)

// NodeFilter is a predicate over nodes used by Match.
type NodeFilter func(Node) bool

// AttrEquals matches nodes whose attribute key equals value.
func AttrEquals(key, value string) NodeFilter {
	return func(n Node) bool { return n.Attrs[key] == value }
}

// AttrExists matches nodes carrying the attribute at all.
func AttrExists(key string) NodeFilter {
	return func(n Node) bool {
		_, ok := n.Attrs[key]
		return ok
	}
}

// HasNeighborVia matches nodes with at least one edge of type t.
func (g *Graph) HasNeighborVia(t EdgeType) NodeFilter {
	return func(n Node) bool { return len(g.Neighbors(n.ID, t)) > 0 }
}

// Match returns the sorted IDs of nodes satisfying every filter — the
// MALGRAPH analogue of a Cypher node-pattern match.
func (g *Graph) Match(filters ...NodeFilter) []string {
	return g.NodesWhere(func(n Node) bool {
		for _, f := range filters {
			if !f(n) {
				return false
			}
		}
		return true
	})
}

// ShortestPath returns a minimum-hop path from → to over edges of the given
// types (all types when none given), or nil when unreachable. Dependency
// edges are traversed in both directions, matching the paper's use of the
// dependency subgraph as an undirected grouping.
func (g *Graph) ShortestPath(from, to string, types ...EdgeType) []string {
	if from == to {
		if _, ok := g.Node(from); ok {
			return []string{from}
		}
		return nil
	}
	if len(types) == 0 {
		types = EdgeTypes()
	}
	prev := map[string]string{from: from}
	frontier := []string{from}
	for len(frontier) > 0 {
		var next []string
		for _, id := range frontier {
			for _, t := range types {
				for _, nb := range g.Neighbors(id, t) {
					if _, seen := prev[nb]; seen {
						continue
					}
					prev[nb] = id
					if nb == to {
						return unwind(prev, from, to)
					}
					next = append(next, nb)
				}
			}
		}
		frontier = next
	}
	return nil
}

func unwind(prev map[string]string, from, to string) []string {
	var path []string
	for cur := to; ; cur = prev[cur] {
		path = append(path, cur)
		if cur == from {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// DegreeRank returns node IDs ranked by descending degree over edges of type
// t, limited to top n (0 = all). For Dependency edges the in-degree is used,
// which is exactly the Table VIII ranking.
func (g *Graph) DegreeRank(t EdgeType, n int) []RankedNode {
	type kv struct {
		id  string
		deg int
	}
	var all []kv
	for _, id := range g.NodeIDs() {
		var deg int
		if t == Dependency {
			deg = g.InDegree(id, t)
		} else {
			deg = len(g.Neighbors(id, t))
		}
		if deg > 0 {
			all = append(all, kv{id, deg})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].deg != all[j].deg {
			return all[i].deg > all[j].deg
		}
		return all[i].id < all[j].id
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	out := make([]RankedNode, 0, len(all))
	for _, e := range all {
		out = append(out, RankedNode{ID: e.id, Degree: e.deg})
	}
	return out
}

// RankedNode is one DegreeRank row.
type RankedNode struct {
	ID     string `json:"id"`
	Degree int    `json:"degree"`
}

// Stats summarises the graph for dashboards and logs.
type Stats struct {
	Nodes          int              `json:"nodes"`
	EdgesByType    map[string]int   `json:"edgesByType"`
	ComponentSizes map[string][]int `json:"componentSizes"` // per edge type, descending
}

// Summary computes Stats.
func (g *Graph) Summary() Stats {
	s := Stats{
		Nodes:          g.NodeCount(),
		EdgesByType:    make(map[string]int, 4),
		ComponentSizes: make(map[string][]int, 4),
	}
	for _, t := range EdgeTypes() {
		s.EdgesByType[t.String()] = g.EdgeCount(t)
		var sizes []int
		for _, comp := range g.ComponentsMin(2, t) {
			sizes = append(sizes, len(comp))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
		s.ComponentSizes[t.String()] = sizes
	}
	return s
}
