package graph

import "fmt"

// Op is one journaled graph mutation. The journal exists so a checkpoint can
// persist the graph as a delta — the operations applied since the previous
// checkpoint — instead of re-serialising every node and edge. Replaying a
// journal on top of the graph state it was recorded against reproduces the
// original graph observationally: every removal primitive (tombstoning or
// compacting) preserves the relative insertion order of surviving edges, and
// WriteJSON serialises exactly that order, so journal replay round-trips to
// byte-identical persistence.
type Op struct {
	Kind  string   `json:"op"` // "node", "attr", "edge", "deledge"
	ID    string   `json:"id,omitempty"`
	Key   string   `json:"key,omitempty"`
	Value string   `json:"value,omitempty"`
	From  string   `json:"from,omitempty"`
	To    string   `json:"to,omitempty"`
	Type  EdgeType `json:"type,omitempty"`
	Attrs Attrs    `json:"attrs,omitempty"`
}

// EnableJournal starts recording mutations. Until enabled, recording costs
// nothing; once enabled the journal grows until DropJournalPrefix trims it,
// so only persistence-attached graphs should enable it. Clones never inherit
// an enabled journal.
func (g *Graph) EnableJournal() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.journal == nil {
		g.journal = []Op{}
	}
}

// JournalLen returns the number of recorded, undropped operations.
func (g *Graph) JournalLen() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.journal)
}

// JournalOps returns a copy of the recorded operations without clearing
// them. The caller persists the ops and, once they are durable, calls
// DropJournalPrefix(len(ops)) — the two-step shape means a failed persist
// loses nothing.
func (g *Graph) JournalOps() []Op {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ops := make([]Op, len(g.journal))
	copy(ops, g.journal)
	return ops
}

// DropJournalPrefix discards the oldest n operations, keeping any recorded
// after the corresponding JournalOps call.
func (g *Graph) DropJournalPrefix(n int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if n <= 0 || g.journal == nil {
		return
	}
	if n > len(g.journal) {
		n = len(g.journal)
	}
	// Reallocate so the dropped prefix's backing array is released.
	g.journal = append([]Op{}, g.journal[n:]...)
}

// recordLocked appends an op if journaling is enabled. Callers hold g.mu.
// Attrs maps recorded here are the same clones installed into the graph;
// both sides treat them as immutable (SetAttr replaces rather than mutates),
// so sharing is safe and costs no copy.
func (g *Graph) recordLocked(op Op) {
	if g.journal != nil {
		g.journal = append(g.journal, op)
	}
}

// Apply replays journaled operations. Replaying onto the same base state the
// journal was recorded against reconstructs the original graph.
func (g *Graph) Apply(ops []Op) error {
	for _, op := range ops {
		switch op.Kind {
		case "node":
			if err := g.AddNode(op.ID, op.Attrs); err != nil {
				return err
			}
		case "attr":
			if err := g.SetAttr(op.ID, op.Key, op.Value); err != nil {
				return err
			}
		case "edge":
			if err := g.AddEdge(op.From, op.To, op.Type, op.Attrs); err != nil {
				return err
			}
		case "deledge":
			g.RemoveEdge(op.From, op.To, op.Type)
		default:
			return fmt.Errorf("graph: unknown journal op %q", op.Kind)
		}
	}
	return nil
}
