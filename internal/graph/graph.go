// Package graph implements the labelled property-graph store underlying
// MALGRAPH. The paper stores interlinked malicious-package nodes in Neo4j
// (§III); this package is the embedded, stdlib-only substitute: typed nodes
// and edges with attribute maps, adjacency indexes, connected-component and
// subgraph queries, and JSON persistence. All operations are safe for
// concurrent use.
package graph

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// EdgeType classifies a relationship between two packages (§III).
type EdgeType int

// The four MALGRAPH relationship types.
const (
	Duplicated EdgeType = iota + 1
	Similar
	Dependency
	Coexisting
)

var edgeTypeNames = map[EdgeType]string{
	Duplicated: "duplicated",
	Similar:    "similar",
	Dependency: "dependency",
	Coexisting: "coexisting",
}

// String returns the paper's name for the edge type.
func (t EdgeType) String() string {
	if s, ok := edgeTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("EdgeType(%d)", int(t))
}

// EdgeTypes lists all edge types in declaration order.
func EdgeTypes() []EdgeType {
	return []EdgeType{Duplicated, Similar, Dependency, Coexisting}
}

// Attrs is a string-keyed attribute map attached to nodes and edges.
type Attrs map[string]string

func (a Attrs) clone() Attrs {
	if a == nil {
		return nil
	}
	c := make(Attrs, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Node is a graph node. The paper's nodes carry seven attributes (ID, name,
// version, source, hash, ecosystem, ...); those live in Attrs so the store
// stays schema-free.
type Node struct {
	ID    string `json:"id"`
	Attrs Attrs  `json:"attrs,omitempty"`
}

// Edge is a typed, attributed relationship. Edges are stored undirected for
// duplicated/similar/co-existing semantics; Dependency edges are directed
// From→To ("From depends on To") but still indexed on both endpoints.
type Edge struct {
	From  string   `json:"from"`
	To    string   `json:"to"`
	Type  EdgeType `json:"type"`
	Attrs Attrs    `json:"attrs,omitempty"`
}

// ErrNodeNotFound is returned when an operation references an unknown node.
var ErrNodeNotFound = errors.New("graph: node not found")

// ErrDuplicateNode is returned when adding a node whose ID already exists.
var ErrDuplicateNode = errors.New("graph: duplicate node id")

// Graph is a concurrent-safe labelled property graph.
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]*Node // guarded by mu
	// adjacency[type][nodeID] = edge indexes into edges; guarded by mu
	adjacency map[EdgeType]map[string][]int
	edges     []Edge          // guarded by mu
	edgeSeen  map[string]bool // dedup key type|min|max (undirected) or type|from|to (directed); guarded by mu
	// countByType is maintained on insert so EdgeCount stays O(1) — the
	// analyses poll per-type counts concurrently and must not scan the
	// edge list under the read lock each time. guarded by mu.
	countByType map[EdgeType]int
	// dead counts tombstoned slots in edges (Type == 0) left behind by
	// RemoveEdgesIncident, which surgically unlinks edges without the O(E)
	// adjacency rebuild a compaction costs. Tombstones are reclaimed by the
	// next RemoveEdgesWhere or when they exceed half the slice. guarded by mu.
	dead int
	// journal records mutations for delta checkpoints once EnableJournal is
	// called; nil means recording is off. guarded by mu.
	journal []Op
}

// New returns an empty graph.
func New() *Graph {
	g := &Graph{
		nodes:       make(map[string]*Node),
		adjacency:   make(map[EdgeType]map[string][]int),
		edgeSeen:    make(map[string]bool),
		countByType: make(map[EdgeType]int, len(EdgeTypes())),
	}
	for _, t := range EdgeTypes() {
		g.adjacency[t] = make(map[string][]int)
	}
	return g
}

// AddNode inserts a node. Attribute maps are copied at the boundary.
func (g *Graph) AddNode(id string, attrs Attrs) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	n := &Node{ID: id, Attrs: attrs.clone()}
	g.nodes[id] = n
	g.recordLocked(Op{Kind: "node", ID: id, Attrs: n.Attrs})
	return nil
}

// Node returns a copy of the node with the given ID.
func (g *Graph) Node(id string) (Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	if !ok {
		return Node{}, false
	}
	return Node{ID: n.ID, Attrs: n.Attrs.clone()}, true
}

// SetAttr sets one attribute on an existing node. The attribute map is
// replaced, not mutated in place (copy-on-write): a Clone taken before the
// call shares the old map and keeps observing the old value, so read-only
// views stay consistent without deep-copying every node's attributes.
func (g *Graph) SetAttr(id, key, value string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	n, ok := g.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, id)
	}
	next := make(Attrs, len(n.Attrs)+1)
	for k, v := range n.Attrs {
		next[k] = v
	}
	next[key] = value
	n.Attrs = next
	g.recordLocked(Op{Kind: "attr", ID: id, Key: key, Value: value})
	return nil
}

// NodeCount returns the number of nodes.
func (g *Graph) NodeCount() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.nodes)
}

// EdgeCount returns the total number of edges, or the count for one type if
// given. Counts come from the per-type index, so this is O(#types) however
// large the graph grows.
func (g *Graph) EdgeCount(types ...EdgeType) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(types) == 0 {
		return len(g.edges) - g.dead
	}
	n := 0
	seen := 0
	for _, t := range types {
		// Guard against the same type listed twice: count each type once.
		if seen&(1<<uint(t)) != 0 {
			continue
		}
		seen |= 1 << uint(t)
		n += g.countByType[t]
	}
	return n
}

func edgeKey(t EdgeType, from, to string) string {
	if t != Dependency && from > to {
		from, to = to, from
	}
	// One allocation per key: this runs for every AddEdge/HasEdge call, and
	// Sprintf boxing dominated graph-construction alloc profiles.
	var b strings.Builder
	b.Grow(2 + len(from) + 1 + len(to))
	b.WriteByte(byte('0' + int(t)))
	b.WriteByte('|')
	b.WriteString(from)
	b.WriteByte('|')
	b.WriteString(to)
	return b.String()
}

// AddEdge inserts a typed edge between existing nodes. Self-loops are
// rejected; duplicate (type, endpoints) insertions are idempotent no-ops.
func (g *Graph) AddEdge(from, to string, t EdgeType, attrs Attrs) error {
	if from == to {
		return fmt.Errorf("graph: self-loop on %s", from)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("%w: %s", ErrNodeNotFound, to)
	}
	key := edgeKey(t, from, to)
	if g.edgeSeen[key] {
		return nil
	}
	g.edgeSeen[key] = true
	idx := len(g.edges)
	e := Edge{From: from, To: to, Type: t, Attrs: attrs.clone()}
	g.edges = append(g.edges, e)
	g.adjacency[t][from] = append(g.adjacency[t][from], idx)
	g.adjacency[t][to] = append(g.adjacency[t][to], idx)
	g.countByType[t]++
	g.recordLocked(Op{Kind: "edge", From: from, To: to, Type: t, Attrs: e.Attrs})
	return nil
}

// RemoveEdgesWhere deletes every edge of type t for which pred holds and
// returns how many were removed. The edge slice is compacted and all
// adjacency indexes are rebuilt, so the surviving edges keep their relative
// insertion order — the operation is deterministic for a deterministic pred.
// It exists for incremental maintenance: a derived edge family (one
// ecosystem's similar edges, the co-existing edges of a report corpus) can be
// dropped wholesale and re-derived without reconstructing the graph.
func (g *Graph) RemoveEdgesWhere(t EdgeType, pred func(Edge) bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	kept := g.edges[:0]
	removed, reclaimed := 0, 0
	for _, e := range g.edges {
		if e.Type == 0 {
			reclaimed++ // tombstone left by RemoveEdgesIncident
			continue
		}
		if e.Type == t && pred(e) {
			delete(g.edgeSeen, edgeKey(e.Type, e.From, e.To))
			g.recordLocked(Op{Kind: "deledge", From: e.From, To: e.To, Type: e.Type})
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 && reclaimed == 0 {
		g.edges = kept
		return 0
	}
	g.countByType[t] -= removed
	g.rebuildLocked(kept, len(g.edges))
	return removed
}

// RemoveEdgesIncident deletes every edge of type t incident to any of the
// given nodes and returns how many were removed. Unlike RemoveEdgesWhere it
// costs O(Σ degree) of the touched nodes, not O(total edges): removed slots
// are tombstoned in place (keeping every surviving edge index valid) and
// only the touched nodes' adjacency lists are filtered. This is the
// partition-scoped edge replacement the incremental engine leans on — a
// dirty LSH partition's similar edges are dropped and re-derived without
// paying a whole-graph adjacency rebuild. Tombstones are compacted away once
// they outnumber live edges.
func (g *Graph) RemoveEdgesIncident(t EdgeType, nodes []string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := 0
	touched := make(map[string]bool, len(nodes))
	for _, id := range nodes {
		for _, idx := range g.adjacency[t][id] {
			e := &g.edges[idx]
			if e.Type != t {
				continue // tombstoned already via an earlier node of this call
			}
			delete(g.edgeSeen, edgeKey(t, e.From, e.To))
			g.recordLocked(Op{Kind: "deledge", From: e.From, To: e.To, Type: t})
			touched[e.From] = true
			touched[e.To] = true
			*e = Edge{}
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	g.countByType[t] -= removed
	g.dead += removed
	ids := make([]string, 0, len(touched))
	for id := range touched {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	g.filterAdjacencyLocked(t, ids)
	g.maybeCompactLocked()
	return removed
}

// filterAdjacencyLocked drops tombstoned slots from the given nodes' type-t
// adjacency lists, deleting lists that empty out. Callers hold g.mu.
func (g *Graph) filterAdjacencyLocked(t EdgeType, ids []string) {
	for _, id := range ids {
		lst := g.adjacency[t][id]
		live := lst[:0]
		for _, idx := range lst {
			if g.edges[idx].Type == t {
				live = append(live, idx)
			}
		}
		if len(live) == 0 {
			delete(g.adjacency[t], id)
		} else {
			g.adjacency[t][id] = live
		}
	}
}

// maybeCompactLocked reclaims tombstoned slots once they outnumber live
// edges (past a floor that keeps small graphs from compacting constantly).
// Callers hold g.mu.
func (g *Graph) maybeCompactLocked() {
	if g.dead <= 1024 || g.dead*2 <= len(g.edges) {
		return
	}
	kept := g.edges[:0]
	for _, e := range g.edges {
		if e.Type != 0 {
			kept = append(kept, e)
		}
	}
	g.rebuildLocked(kept, len(g.edges))
}

// RemoveEdge deletes the single edge of type t joining from and to (either
// orientation for undirected types, exactly from→to for Dependency) and
// reports whether it existed. Like RemoveEdgesIncident the slot is tombstoned
// in place and only the two endpoints' adjacency lists are filtered, so the
// cost is O(degree) of the endpoints — the primitive behind per-pair edge
// replacement (the co-existing stage's first-writer ownership repair), where
// exactly one edge's attributes must change without touching its neighbors.
func (g *Graph) RemoveEdge(from, to string, t EdgeType) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := edgeKey(t, from, to)
	if !g.edgeSeen[key] {
		return false
	}
	delete(g.edgeSeen, key)
	g.recordLocked(Op{Kind: "deledge", From: from, To: to, Type: t})
	for _, idx := range g.adjacency[t][from] {
		e := &g.edges[idx]
		if e.Type != t {
			continue
		}
		if (e.From == from && e.To == to) || (t != Dependency && e.From == to && e.To == from) {
			*e = Edge{}
			break
		}
	}
	g.countByType[t]--
	g.dead++
	g.filterAdjacencyLocked(t, []string{from, to})
	g.maybeCompactLocked()
	return true
}

// rebuildLocked installs the compacted edge slice (sharing g.edges' backing
// array, prevLen its previous length) and rebuilds every adjacency index.
func (g *Graph) rebuildLocked(kept []Edge, prevLen int) {
	// Zero the tail so dropped Edge values (attr maps, strings) are not
	// pinned by the backing array.
	tail := g.edges[len(kept):prevLen]
	for i := range tail {
		tail[i] = Edge{}
	}
	g.edges = kept
	g.dead = 0
	for _, et := range EdgeTypes() {
		g.adjacency[et] = make(map[string][]int)
	}
	for idx, e := range g.edges {
		g.adjacency[e.Type][e.From] = append(g.adjacency[e.Type][e.From], idx)
		g.adjacency[e.Type][e.To] = append(g.adjacency[e.Type][e.To], idx)
	}
}

// HasEdge reports whether an edge of type t joins the two nodes (in either
// direction for undirected types; exactly from→to for Dependency).
func (g *Graph) HasEdge(from, to string, t EdgeType) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.edgeSeen[edgeKey(t, from, to)]
}

// Neighbors returns the IDs adjacent to id via edges of type t, sorted.
func (g *Graph) Neighbors(id string, t EdgeType) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for _, idx := range g.adjacency[t][id] {
		e := g.edges[idx]
		if e.From == id {
			out = append(out, e.To)
		} else {
			out = append(out, e.From)
		}
	}
	sort.Strings(out)
	return out
}

// OutNeighbors returns IDs reachable from id following directed edges of type
// t (From==id). For undirected edge types this is a subset of Neighbors.
func (g *Graph) OutNeighbors(id string, t EdgeType) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for _, idx := range g.adjacency[t][id] {
		if e := g.edges[idx]; e.From == id {
			out = append(out, e.To)
		}
	}
	sort.Strings(out)
	return out
}

// InDegree returns the number of edges of type t whose To endpoint is id —
// for Dependency edges, how many packages hide behind this one (Table VIII).
func (g *Graph) InDegree(id string, t EdgeType) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n := 0
	for _, idx := range g.adjacency[t][id] {
		if g.edges[idx].To == id {
			n++
		}
	}
	return n
}

// Edges returns a copy of all edges, optionally filtered by type.
func (g *Graph) Edges(types ...EdgeType) []Edge {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Edge
	for _, e := range g.edges {
		if e.Type == 0 {
			continue // tombstoned slot
		}
		if len(types) == 0 {
			out = append(out, Edge{From: e.From, To: e.To, Type: e.Type, Attrs: e.Attrs.clone()})
			continue
		}
		for _, t := range types {
			if e.Type == t {
				out = append(out, Edge{From: e.From, To: e.To, Type: e.Type, Attrs: e.Attrs.clone()})
				break
			}
		}
	}
	return out
}

// NodeIDs returns all node IDs, sorted.
func (g *Graph) NodeIDs() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NodesWhere returns sorted IDs of nodes for which pred holds.
func (g *Graph) NodesWhere(pred func(Node) bool) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for _, n := range g.nodes {
		if pred(Node{ID: n.ID, Attrs: n.Attrs}) {
			out = append(out, n.ID)
		}
	}
	sort.Strings(out)
	return out
}

// Components returns the connected components induced by edges of the given
// types (all types when none given). Each component is sorted; components are
// ordered by their smallest member. This is the paper's subgraph operation:
// "if two nodes have an edge e(u,v), we put them into the same subgraph".
func (g *Graph) Components(types ...EdgeType) [][]string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if len(types) == 0 {
		types = EdgeTypes()
	}
	parent := make(map[string]string, len(g.nodes))
	var find func(string) string
	find = func(x string) string {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for id := range g.nodes {
		parent[id] = id
	}
	for _, t := range types {
		for nodeID, idxs := range g.adjacency[t] {
			for _, idx := range idxs {
				e := g.edges[idx]
				if e.From == nodeID { // visit each edge once
					//malgraph:nondeterm-ok union-find parent choice varies with merge order; components are canonicalised by the sorts below
					union(e.From, e.To)
				}
			}
		}
	}
	groups := make(map[string][]string)
	for id := range g.nodes {
		root := find(id)
		//malgraph:nondeterm-ok each node lands in exactly one component; member order is canonicalised by sort.Strings below
		groups[root] = append(groups[root], id)
	}
	out := make([][]string, 0, len(groups))
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ComponentsMin returns components with at least minSize members — the
// paper's subgraphs always require ≥2 nodes.
func (g *Graph) ComponentsMin(minSize int, types ...EdgeType) [][]string {
	all := g.Components(types...)
	out := all[:0]
	for _, c := range all {
		if len(c) >= minSize {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns an independent copy of the graph — the immutable view the
// epoch-publishing read path serves from. Containers (node map, adjacency
// index, edge slice, dedup set) are copied so later mutations of the
// original never reach the clone; immutable leaves are shared: node
// attribute maps (SetAttr replaces rather than mutates — see SetAttr) and
// edge attribute maps (copied once at AddEdge and never written again).
// Cost is O(V+E) pointer-level copies, paid by the writer at publish time
// so that readers pay nothing.
func (g *Graph) Clone() *Graph {
	g.mu.RLock()
	defer g.mu.RUnlock()
	c := &Graph{
		nodes:       make(map[string]*Node, len(g.nodes)),
		adjacency:   make(map[EdgeType]map[string][]int, len(g.adjacency)),
		edgeSeen:    make(map[string]bool, len(g.edgeSeen)),
		countByType: make(map[EdgeType]int, len(g.countByType)),
		dead:        g.dead,
	}
	for id, n := range g.nodes {
		c.nodes[id] = &Node{ID: n.ID, Attrs: n.Attrs}
	}
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for t, adj := range g.adjacency {
		m := make(map[string][]int, len(adj))
		for id, lst := range adj {
			cp := make([]int, len(lst))
			copy(cp, lst)
			m[id] = cp
		}
		c.adjacency[t] = m
	}
	for k := range g.edgeSeen {
		c.edgeSeen[k] = true
	}
	for t, n := range g.countByType {
		c.countByType[t] = n
	}
	return c
}

// persisted is the JSON wire format.
type persisted struct {
	Nodes []Node `json:"nodes"`
	Edges []Edge `json:"edges"`
}

// WriteJSON serialises the graph deterministically (nodes sorted by ID).
func (g *Graph) WriteJSON(w io.Writer) error {
	g.mu.RLock()
	p := persisted{Edges: make([]Edge, 0, len(g.edges)-g.dead)}
	for _, e := range g.edges {
		if e.Type != 0 { // skip tombstoned slots
			p.Edges = append(p.Edges, e)
		}
	}
	for _, n := range g.nodes {
		p.Nodes = append(p.Nodes, Node{ID: n.ID, Attrs: n.Attrs.clone()})
	}
	g.mu.RUnlock()
	sort.Slice(p.Nodes, func(i, j int) bool { return p.Nodes[i].ID < p.Nodes[j].ID })
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// ReadJSON deserialises a graph previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Graph, error) {
	var p persisted
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("graph decode: %w", err)
	}
	g := New()
	for _, n := range p.Nodes {
		if err := g.AddNode(n.ID, n.Attrs); err != nil {
			return nil, err
		}
	}
	for _, e := range p.Edges {
		if err := g.AddEdge(e.From, e.To, e.Type, e.Attrs); err != nil {
			return nil, err
		}
	}
	return g, nil
}
