package graph

import (
	"strings"
	"testing"
)

func queryFixture(t *testing.T) *Graph {
	t.Helper()
	g := New()
	nodes := map[string]Attrs{
		"a": {"eco": "PyPI", "name": "alpha"},
		"b": {"eco": "PyPI", "name": "beta"},
		"c": {"eco": "NPM", "name": "gamma"},
		"d": {"eco": "NPM", "name": "delta"},
		"e": {"eco": "NPM"},
	}
	for id, attrs := range nodes {
		if err := g.AddNode(id, attrs); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"a", "b"}, {"b", "c"}} {
		if err := g.AddEdge(e[0], e[1], Similar, nil); err != nil {
			t.Fatal(err)
		}
	}
	// d depends on c; another front e also depends on c.
	if err := g.AddEdge("d", "c", Dependency, nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("e", "c", Dependency, nil); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMatchFilters(t *testing.T) {
	g := queryFixture(t)
	pypi := g.Match(AttrEquals("eco", "PyPI"))
	if strings.Join(pypi, ",") != "a,b" {
		t.Fatalf("PyPI nodes = %v", pypi)
	}
	named := g.Match(AttrEquals("eco", "NPM"), AttrExists("name"))
	if strings.Join(named, ",") != "c,d" {
		t.Fatalf("named NPM nodes = %v", named)
	}
	connected := g.Match(AttrEquals("eco", "NPM"), g.HasNeighborVia(Dependency))
	if strings.Join(connected, ",") != "c,d,e" {
		t.Fatalf("dep-connected = %v", connected)
	}
	if got := g.Match(AttrEquals("eco", "Rust")); got != nil {
		t.Fatalf("empty match = %v", got)
	}
}

func TestShortestPath(t *testing.T) {
	g := queryFixture(t)
	path := g.ShortestPath("a", "c", Similar)
	if strings.Join(path, "→") != "a→b→c" {
		t.Fatalf("path = %v", path)
	}
	// Cross-type path: a –Similar– b –Similar– c –Dependency– d.
	full := g.ShortestPath("a", "d")
	if len(full) != 4 || full[3] != "d" {
		t.Fatalf("cross-type path = %v", full)
	}
	if g.ShortestPath("a", "d", Similar) != nil {
		t.Fatal("similar-only path to d must not exist")
	}
	if got := g.ShortestPath("a", "a"); len(got) != 1 {
		t.Fatalf("self path = %v", got)
	}
	if g.ShortestPath("ghost", "a") != nil {
		t.Fatal("unknown start must give nil")
	}
}

func TestDegreeRank(t *testing.T) {
	g := queryFixture(t)
	rank := g.DegreeRank(Dependency, 0)
	if len(rank) == 0 || rank[0].ID != "c" || rank[0].Degree != 2 {
		t.Fatalf("dependency rank = %v", rank)
	}
	sim := g.DegreeRank(Similar, 1)
	if len(sim) != 1 || sim[0].ID != "b" {
		t.Fatalf("similar rank = %v", sim)
	}
}

func TestSummary(t *testing.T) {
	g := queryFixture(t)
	s := g.Summary()
	if s.Nodes != 5 {
		t.Fatalf("nodes = %d", s.Nodes)
	}
	if s.EdgesByType["similar"] != 2 || s.EdgesByType["dependency"] != 2 {
		t.Fatalf("edges = %v", s.EdgesByType)
	}
	simSizes := s.ComponentSizes["similar"]
	if len(simSizes) != 1 || simSizes[0] != 3 {
		t.Fatalf("similar components = %v", simSizes)
	}
	depSizes := s.ComponentSizes["dependency"]
	if len(depSizes) != 1 || depSizes[0] != 3 {
		t.Fatalf("dependency components = %v", depSizes)
	}
}
