// Package stats provides the small statistical toolkit the analyses need:
// empirical CDFs, histograms, summary statistics, and ASCII rendering for
// tables and simple plots (the repository's stand-in for the paper's
// matplotlib figures).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (the input slice is not modified).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method; q outside [0,1] is clamped.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return c.sorted[rank]
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs suitable for
// plotting or serialisation.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / max(n-1, 1)
		x := c.sorted[idx]
		out = append(out, [2]float64{x, c.At(x)})
	}
	return out
}

// Summary holds the descriptive statistics reported throughout §V.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary over samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		s.Mean, s.Std, s.Min, s.Max, s.Median = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	var sum float64
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, v := range samples {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	s.Median = NewCDF(samples).Quantile(0.5)
	return s
}

// Histogram counts samples into labelled buckets defined by upper bounds.
type Histogram struct {
	Bounds []float64 // ascending upper bounds; final implicit bucket is +Inf
	Counts []int
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{Bounds: b, Counts: make([]int, len(b)+1)}
}

// Add places one sample.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.Bounds, v)
	h.Counts[i]++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Table renders rows of cells as an aligned ASCII table with a header row.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// BarChart renders labelled values as a horizontal ASCII bar chart, the
// textual analogue of the paper's bar figures (Fig. 9, 12, 14).
func BarChart(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxVal {
			maxVal = v
		}
		if i < len(labels) && len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bar := 0
		if maxVal > 0 {
			bar = int(math.Round(v / maxVal * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s |%s %g\n", maxLabel, label, strings.Repeat("#", bar), v)
	}
	return b.String()
}

// CDFPlot renders a CDF as an ASCII line sketch with the requested number of
// sample rows — the textual analogue of Figs. 6, 10, 11, 13.
func CDFPlot(c *CDF, rows, width int) string {
	if c.Len() == 0 {
		return "(empty)\n"
	}
	if rows <= 0 {
		rows = 10
	}
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	for i := 0; i <= rows; i++ {
		q := float64(i) / float64(rows)
		x := c.Quantile(q)
		bar := int(q * float64(width))
		fmt.Fprintf(&b, "P<=%-10.3f %5.0f%% |%s\n", x, q*100, strings.Repeat("#", bar))
	}
	return b.String()
}

// Percent formats a ratio as "12.34%".
func Percent(ratio float64) string { return fmt.Sprintf("%.2f%%", ratio*100) }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
