package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(1) != 0 {
		t.Fatal("empty CDF At must be 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF quantile must be NaN")
	}
	if got := CDFPlot(c, 5, 10); !strings.Contains(got, "empty") {
		t.Fatalf("empty plot = %q", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if got := c.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := c.Quantile(1); got != 40 {
		t.Fatalf("q1 = %v", got)
	}
	if got := c.Quantile(0.5); got != 20 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Quantile(-1); got != 10 {
		t.Fatalf("clamped low = %v", got)
	}
	if got := c.Quantile(2); got != 40 {
		t.Fatalf("clamped high = %v", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		c := NewCDF(clean)
		prev := -1.0
		xs := append([]float64{}, clean...)
		sort.Float64s(xs)
		for _, x := range xs {
			p := c.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return c.At(xs[len(xs)-1]) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFInputNotMutated(t *testing.T) {
	in := []float64{3, 1, 2}
	_ = NewCDF(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("NewCDF mutated its input")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	if pts[0][0] != 1 || pts[2][0] != 5 {
		t.Fatalf("points span wrong: %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Fatalf("non-monotone points: %v", pts)
		}
	}
	if got := c.Points(0); got != nil {
		t.Fatal("Points(0) must be nil")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Median != 4 {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{10, 20})
	for _, v := range []float64{5, 10, 15, 25, 30} {
		h.Add(v)
	}
	// Buckets: <=10 (5,10), <=20 (15), >20 (25,30).
	want := []int{2, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "n"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[1], "----") {
		t.Fatalf("bad header: %q", out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Fatalf("rows not aligned:\n%q\n%q", lines[2], lines[3])
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart([]string{"CN", "CV"}, []float64{88.65, 11.35}, 20)
	if !strings.Contains(out, "CN") || !strings.Contains(out, "88.65") {
		t.Fatalf("bar chart missing content: %q", out)
	}
	cnBars := strings.Count(strings.Split(out, "\n")[0], "#")
	cvBars := strings.Count(strings.Split(out, "\n")[1], "#")
	if cnBars <= cvBars {
		t.Fatalf("larger value must have longer bar: %d vs %d", cnBars, cvBars)
	}
}

func TestCDFPlotShape(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	out := CDFPlot(c, 4, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 rows, got %d", len(lines))
	}
	if !strings.Contains(lines[0], "0%") || !strings.Contains(lines[4], "100%") {
		t.Fatalf("plot endpoints wrong: %q", out)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.8865); got != "88.65%" {
		t.Fatalf("Percent = %q", got)
	}
}
