// Package depscan extracts dependency relationships from packages, following
// §III-C: (1) parse the manifest (package.json / requirements.txt / gemspec)
// for declared dependencies, (2) locate each known-malicious package name in
// the source, cut a 100-character window around the match, and test the
// window against the import/require regular expressions of Table II,
// (3) filter false positives such as mentions inside code comments.
package depscan

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strings"

	"malgraph/internal/ecosys"
)

// WindowSize is the character window cut around a name match (§III-C step 3).
const WindowSize = 100

// Match is one dependency reference found in source code.
type Match struct {
	Dep     string // the referenced package name
	File    string // path of the file containing the reference
	Window  string // the ±100-char excerpt around the match
	Pattern string // which Table II pattern confirmed the reference
}

// Scanner holds the compiled Table II patterns. A Scanner is immutable and
// safe for concurrent use.
type Scanner struct {
	patterns []tablePattern
}

type tablePattern struct {
	name string
	re   *regexp.Regexp
}

// NewScanner compiles the Table II regular expressions (adapted to RE2).
// The %s placeholder is substituted with the quoted dependency name so each
// probe is anchored on the package we are testing for.
func NewScanner() *Scanner {
	specs := []struct{ name, expr string }{
		// import X from 'dep' / import {a} from "dep"
		{"es-import-from", `import\s+[\w.{},*$\s/]+?\s+from\s+['"]%s['"]`},
		// from dep import a, b
		{"py-from-import", `from\s+%s(\.[\w.]+)?\s+import\s+`},
		// import 'dep' / import "dep" (side-effect import)
		{"es-side-effect-import", `import\s+['"]%s['"]`},
		// import dep / import dep.sub
		{"py-plain-import", `import\s+%s(\s|$|\.|,|;)`},
		// const x = require('dep'), let/var forms
		{"js-assigned-require", `(const|let|var)\s+[\w.{},$\s]+=\s*require\(\s*['"]%s['"]\s*\)`},
		// bare require('dep')
		{"js-require", `require\(\s*['"]%s['"]\s*\)`},
		// ruby require 'dep'
		{"rb-require", `require\s+['"]%s['"]`},
	}
	s := &Scanner{patterns: make([]tablePattern, 0, len(specs))}
	for _, spec := range specs {
		s.patterns = append(s.patterns, tablePattern{name: spec.name, re: nil})
		// The regexps are instantiated per dependency name via template; we
		// keep the raw template and compile on demand with a small cache.
		s.patterns[len(s.patterns)-1].re = regexp.MustCompile(strings.ReplaceAll(spec.expr, "%s", `__DEP__`))
		_ = spec
	}
	return s
}

// matchPattern instantiates a template pattern for one dependency name.
// Compilation is cheap relative to corpus scanning and keeps Scanner
// stateless; dependency names are escaped so squats like "c++lib" stay safe.
func (p tablePattern) forDep(dep string) *regexp.Regexp {
	return regexp.MustCompile(strings.ReplaceAll(p.re.String(), "__DEP__", regexp.QuoteMeta(dep)))
}

// FromManifest parses the artifact's manifest into declared dependency names
// (§III-C step 2). Unknown or missing manifests yield an empty slice.
func (s *Scanner) FromManifest(a *ecosys.Artifact) ([]string, error) {
	m, ok := a.Manifest()
	if !ok {
		return nil, nil
	}
	switch a.Coord.Ecosystem {
	case ecosys.PyPI:
		return parseRequirements(m.Content), nil
	case ecosys.RubyGems:
		return parseGemspec(m.Content), nil
	default:
		return parsePackageJSON(m.Content)
	}
}

var requirementSplit = regexp.MustCompile(`[=<>!~;\[\s]`)

func parseRequirements(content string) []string {
	var deps []string
	for _, line := range strings.Split(content, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "-") {
			continue
		}
		name := requirementSplit.Split(line, 2)[0]
		if name != "" {
			deps = append(deps, name)
		}
	}
	return deps
}

var gemDependencyRe = regexp.MustCompile(`add(_runtime|_development)?_dependency\s*\(?\s*['"]([\w.-]+)['"]`)

func parseGemspec(content string) []string {
	var deps []string
	for _, m := range gemDependencyRe.FindAllStringSubmatch(content, -1) {
		deps = append(deps, m[2])
	}
	return deps
}

func parsePackageJSON(content string) ([]string, error) {
	var manifest struct {
		Dependencies    map[string]string `json:"dependencies"`
		DevDependencies map[string]string `json:"devDependencies"`
	}
	if err := json.Unmarshal([]byte(content), &manifest); err != nil {
		return nil, fmt.Errorf("package.json parse: %w", err)
	}
	deps := make([]string, 0, len(manifest.Dependencies)+len(manifest.DevDependencies))
	for name := range manifest.Dependencies {
		deps = append(deps, name)
	}
	for name := range manifest.DevDependencies {
		deps = append(deps, name)
	}
	sortStrings(deps)
	return deps, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// FromSource scans the artifact's source files for references to any of the
// candidate names (§III-C step 3): exact string match → 100-char window →
// Table II regex confirmation → comment filtering.
func (s *Scanner) FromSource(a *ecosys.Artifact, candidates map[string]bool) []Match {
	if len(candidates) == 0 {
		return nil
	}
	var out []Match
	for _, f := range a.SourceFiles() {
		for dep := range candidates {
			if dep == a.Coord.Name {
				continue // self-references are not dependencies
			}
			out = append(out, s.scanFile(f, dep)...)
		}
	}
	// Deterministic order for reproducible pipelines.
	sortMatches(out)
	return out
}

func (s *Scanner) scanFile(f ecosys.File, dep string) []Match {
	var out []Match
	content := f.Content
	offset := 0
	for {
		idx := strings.Index(content[offset:], dep)
		if idx < 0 {
			break
		}
		pos := offset + idx
		window := cutWindow(content, pos, len(dep))
		if pat, ok := s.confirm(window, dep); ok && !InComment(content, pos) {
			out = append(out, Match{Dep: dep, File: f.Path, Window: window, Pattern: pat})
			break // one confirmed reference per (file, dep) is enough
		}
		offset = pos + len(dep)
	}
	return out
}

func cutWindow(content string, pos, matchLen int) string {
	start := pos - WindowSize/2
	if start < 0 {
		start = 0
	}
	end := pos + matchLen + WindowSize/2
	if end > len(content) {
		end = len(content)
	}
	return content[start:end]
}

func (s *Scanner) confirm(window, dep string) (string, bool) {
	for _, p := range s.patterns {
		if p.forDep(dep).MatchString(window) {
			return p.name, true
		}
	}
	return "", false
}

// InComment reports whether the byte at pos sits inside a line comment
// (#, //) — the false-positive class §III-C step 4 filters manually.
func InComment(content string, pos int) bool {
	lineStart := strings.LastIndexByte(content[:pos], '\n') + 1
	line := content[lineStart:pos]
	if i := strings.Index(line, "#"); i >= 0 {
		return true
	}
	if i := strings.Index(line, "//"); i >= 0 {
		return true
	}
	return false
}

func sortMatches(ms []Match) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && less(ms[j], ms[j-1]); j-- {
			ms[j], ms[j-1] = ms[j-1], ms[j]
		}
	}
}

func less(a, b Match) bool {
	if a.Dep != b.Dep {
		return a.Dep < b.Dep
	}
	return a.File < b.File
}

// MaliciousDeps returns the names from the malicious-corpus candidate set
// that this artifact depends on, combining the manifest channel and the
// confirmed source-scan channel (§III-C steps 2–4).
func (s *Scanner) MaliciousDeps(a *ecosys.Artifact, corpus map[string]bool) ([]string, error) {
	found := make(map[string]bool)
	manifestDeps, err := s.FromManifest(a)
	if err != nil {
		return nil, err
	}
	for _, d := range manifestDeps {
		if corpus[d] && d != a.Coord.Name {
			found[d] = true
		}
	}
	for _, m := range s.FromSource(a, corpus) {
		found[m.Dep] = true
	}
	out := make([]string, 0, len(found))
	for d := range found {
		out = append(out, d)
	}
	sortStrings(out)
	return out, nil
}
