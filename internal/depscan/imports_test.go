package depscan

import (
	"strings"
	"testing"

	"malgraph/internal/ecosys"
)

func TestExtractImportsPython(t *testing.T) {
	a := pyArtifact("pkg", ecosys.File{Path: "setup.py", Content: `import os
import pygrata.utils
from urllib import request
# import commented
x = "import fake"
`})
	got := ExtractImports(a)
	joined := strings.Join(got, ",")
	for _, want := range []string{"os", "pygrata", "urllib"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("imports = %v, missing %q", got, want)
		}
	}
	if strings.Contains(joined, "commented") || strings.Contains(joined, "fake") {
		t.Fatalf("imports = %v contains filtered entries", got)
	}
}

func TestExtractImportsJS(t *testing.T) {
	a := npmArtifact("pkg", ecosys.File{Path: "index.js", Content: `const u = require('util');
import icons from 'icons';
import 'side-effect-pkg';
const local = require('./lib/x');
// const no = require('commented');
`})
	got := ExtractImports(a)
	joined := strings.Join(got, ",")
	for _, want := range []string{"util", "icons", "side-effect-pkg", "lib"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("imports = %v, missing %q", got, want)
		}
	}
	if strings.Contains(joined, "commented") {
		t.Fatalf("imports = %v contains comment", got)
	}
}

func TestExtractImportsRuby(t *testing.T) {
	a := ecosys.NewArtifact(ecosys.Coord{Ecosystem: ecosys.RubyGems, Name: "g", Version: "1"}, "",
		[]ecosys.File{{Path: "main.rb", Content: "require 'rest-client'\nrequire 'net/http'\n"}})
	got := ExtractImports(a)
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "rest-client") || !strings.Contains(joined, "net") {
		t.Fatalf("imports = %v", got)
	}
}

func TestTopLevel(t *testing.T) {
	cases := map[string]string{
		"pygrata.utils": "pygrata",
		"./lib/x":       "lib",
		"../up":         "up",
		"net/http":      "net",
		"@scope/pkg":    "@scope/pkg",
		"plain":         "plain",
	}
	for in, want := range cases {
		if got := topLevel(in); got != want {
			t.Errorf("topLevel(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMaliciousDepsFastAgreesWithSlow(t *testing.T) {
	a := pyArtifact("loglib-modules",
		ecosys.File{Path: "requirements.txt", Content: "pygrata\nrequests\n"},
		ecosys.File{Path: "setup.py", Content: "import urllib\nimport os\n"},
	)
	corpus := map[string]bool{"pygrata": true, "urllib": true}
	s := NewScanner()
	slow, err := s.MaliciousDeps(a, corpus)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := s.MaliciousDepsFast(a, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(slow, ",") != strings.Join(fast, ",") {
		t.Fatalf("fast %v != slow %v", fast, slow)
	}
}

func TestMaliciousDepsFastBadManifest(t *testing.T) {
	a := npmArtifact("bad", ecosys.File{Path: "package.json", Content: "{oops"})
	if _, err := NewScanner().MaliciousDepsFast(a, map[string]bool{"x": true}); err == nil {
		t.Fatal("bad manifest must propagate error")
	}
}
