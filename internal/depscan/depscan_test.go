package depscan

import (
	"strings"
	"testing"

	"malgraph/internal/ecosys"
)

func pyArtifact(name string, files ...ecosys.File) *ecosys.Artifact {
	return ecosys.NewArtifact(ecosys.Coord{Ecosystem: ecosys.PyPI, Name: name, Version: "1.0.0"}, "", files)
}

func npmArtifact(name string, files ...ecosys.File) *ecosys.Artifact {
	return ecosys.NewArtifact(ecosys.Coord{Ecosystem: ecosys.NPM, Name: name, Version: "1.0.0"}, "", files)
}

func TestFromManifestRequirements(t *testing.T) {
	a := pyArtifact("loglib-modules", ecosys.File{
		Path:    "requirements.txt",
		Content: "pygrata==1.0.0\nrequests>=2.0\n# a comment\n\ncolorama\n",
	})
	s := NewScanner()
	deps, err := s.FromManifest(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"pygrata", "requests", "colorama"}
	if len(deps) != len(want) {
		t.Fatalf("deps = %v, want %v", deps, want)
	}
	for i := range want {
		if deps[i] != want[i] {
			t.Fatalf("deps = %v, want %v", deps, want)
		}
	}
}

func TestFromManifestPackageJSON(t *testing.T) {
	a := npmArtifact("front", ecosys.File{
		Path:    "package.json",
		Content: `{"name":"front","version":"1.0.0","dependencies":{"util":"^1.0.0","icons":"2.x"},"devDependencies":{"mocha":"*"}}`,
	})
	s := NewScanner()
	deps, err := s.FromManifest(a)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(deps, ",")
	for _, want := range []string{"util", "icons", "mocha"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("deps = %v, missing %q", deps, want)
		}
	}
}

func TestFromManifestPackageJSONInvalid(t *testing.T) {
	a := npmArtifact("bad", ecosys.File{Path: "package.json", Content: "{broken"})
	if _, err := NewScanner().FromManifest(a); err == nil {
		t.Fatal("invalid package.json must error")
	}
}

func TestFromManifestGemspec(t *testing.T) {
	a := ecosys.NewArtifact(ecosys.Coord{Ecosystem: ecosys.RubyGems, Name: "g", Version: "1"}, "",
		[]ecosys.File{{
			Path: "package.gemspec",
			Content: `Gem::Specification.new do |s|
  s.name = "g"
  s.add_dependency "rest-client"
  s.add_runtime_dependency("nokogiri")
  s.add_development_dependency 'rspec'
end`,
		}})
	deps, err := NewScanner().FromManifest(a)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(deps, ",")
	for _, want := range []string{"rest-client", "nokogiri", "rspec"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("gemspec deps = %v, missing %q", deps, want)
		}
	}
}

func TestFromManifestMissing(t *testing.T) {
	a := pyArtifact("bare")
	deps, err := NewScanner().FromManifest(a)
	if err != nil || len(deps) != 0 {
		t.Fatalf("missing manifest: deps=%v err=%v", deps, err)
	}
}

func TestFromSourcePythonImports(t *testing.T) {
	cases := []string{
		"import pygrata\n",
		"import pygrata.core\n",
		"from pygrata import utils\n",
		"from pygrata.sub import thing\n",
	}
	s := NewScanner()
	for _, src := range cases {
		a := pyArtifact("loglib-modules", ecosys.File{Path: "setup.py", Content: src})
		ms := s.FromSource(a, map[string]bool{"pygrata": true})
		if len(ms) != 1 || ms[0].Dep != "pygrata" {
			t.Fatalf("src %q: matches = %v", src, ms)
		}
		if len(ms[0].Window) > WindowSize+len("pygrata")+1 {
			t.Fatalf("window too large: %d", len(ms[0].Window))
		}
	}
}

func TestFromSourceJSRequires(t *testing.T) {
	cases := []string{
		"const u = require('util');\n",
		"let u = require(\"util\");\n",
		"var u = require('util');\n",
		"require('util');\n",
		"import util from 'util';\n",
		"import 'util';\n",
		"import { x } from 'util';\n",
	}
	s := NewScanner()
	for _, src := range cases {
		a := npmArtifact("front", ecosys.File{Path: "index.js", Content: src})
		ms := s.FromSource(a, map[string]bool{"util": true})
		if len(ms) != 1 {
			t.Fatalf("src %q: matches = %v", src, ms)
		}
	}
}

func TestFromSourceRubyRequire(t *testing.T) {
	a := ecosys.NewArtifact(ecosys.Coord{Ecosystem: ecosys.RubyGems, Name: "g", Version: "1"}, "",
		[]ecosys.File{{Path: "main.rb", Content: "require 'rest-client'\n"}})
	ms := NewScanner().FromSource(a, map[string]bool{"rest-client": true})
	if len(ms) != 1 || ms[0].Pattern != "rb-require" {
		t.Fatalf("matches = %v", ms)
	}
}

func TestFromSourceIgnoresComments(t *testing.T) {
	cases := []struct {
		eco ecosys.Ecosystem
		src string
	}{
		{ecosys.PyPI, "# import pygrata\nx = 1\n"},
		{ecosys.NPM, "// const u = require('pygrata');\nlet y = 2;\n"},
		{ecosys.NPM, "let z = 1; // import pygrata from 'pygrata'\n"},
	}
	s := NewScanner()
	for _, tc := range cases {
		name, path := "pkg", "index.js"
		if tc.eco == ecosys.PyPI {
			path = "setup.py"
		}
		a := ecosys.NewArtifact(ecosys.Coord{Ecosystem: tc.eco, Name: name, Version: "1"}, "",
			[]ecosys.File{{Path: path, Content: tc.src}})
		if ms := s.FromSource(a, map[string]bool{"pygrata": true}); len(ms) != 0 {
			t.Fatalf("comment not filtered for %q: %v", tc.src, ms)
		}
	}
}

func TestFromSourceIgnoresBareMention(t *testing.T) {
	// The name appearing in a string or identifier without import syntax is
	// not a dependency.
	a := pyArtifact("pkg", ecosys.File{Path: "setup.py", Content: "x = 'I like pygrata a lot'\npygrata_style = 3\n"})
	if ms := NewScanner().FromSource(a, map[string]bool{"pygrata": true}); len(ms) != 0 {
		t.Fatalf("bare mention matched: %v", ms)
	}
}

func TestFromSourceSkipsSelfReference(t *testing.T) {
	a := pyArtifact("pygrata", ecosys.File{Path: "setup.py", Content: "import pygrata\n"})
	if ms := NewScanner().FromSource(a, map[string]bool{"pygrata": true}); len(ms) != 0 {
		t.Fatalf("self reference matched: %v", ms)
	}
}

func TestFromSourceLaterConfirmedMatch(t *testing.T) {
	// First occurrence is a bare mention, second is a real import; the
	// scanner must keep searching past the unconfirmed hit.
	src := "banner = 'pygrata'\nimport pygrata\n"
	a := pyArtifact("pkg", ecosys.File{Path: "setup.py", Content: src})
	ms := NewScanner().FromSource(a, map[string]bool{"pygrata": true})
	if len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
}

func TestMaliciousDepsCombinesChannels(t *testing.T) {
	a := pyArtifact("loglib-modules",
		ecosys.File{Path: "requirements.txt", Content: "pygrata\nrequests\n"},
		ecosys.File{Path: "setup.py", Content: "import urllib\n"},
	)
	corpus := map[string]bool{"pygrata": true, "urllib": true, "loglib-modules": true}
	deps, err := NewScanner().MaliciousDeps(a, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 2 || deps[0] != "pygrata" || deps[1] != "urllib" {
		t.Fatalf("deps = %v", deps)
	}
}

func TestMaliciousDepsExcludesSelfAndLegit(t *testing.T) {
	a := pyArtifact("pygrata-utils",
		ecosys.File{Path: "requirements.txt", Content: "pygrata-utils\nrequests\n"},
	)
	deps, err := NewScanner().MaliciousDeps(a, map[string]bool{"pygrata-utils": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 0 {
		t.Fatalf("self/legit deps leaked: %v", deps)
	}
}

func TestInComment(t *testing.T) {
	content := "x = 1 # import dep\nimport dep\n"
	commentPos := strings.Index(content, "import dep")
	realPos := strings.LastIndex(content, "import dep")
	if !InComment(content, commentPos) {
		t.Fatal("comment position not detected")
	}
	if InComment(content, realPos) {
		t.Fatal("real import flagged as comment")
	}
}

func TestWindowBounds(t *testing.T) {
	// Match at the very start/end of a file must not panic and must clamp.
	a := pyArtifact("pkg", ecosys.File{Path: "setup.py", Content: "import dep"})
	ms := NewScanner().FromSource(a, map[string]bool{"dep": true})
	if len(ms) != 1 {
		t.Fatalf("matches = %v", ms)
	}
	if ms[0].Window != "import dep" {
		t.Fatalf("window = %q", ms[0].Window)
	}
}

func TestRegexEscapingInDepNames(t *testing.T) {
	// Dots and pluses in names must be treated literally.
	a := npmArtifact("pkg", ecosys.File{Path: "index.js", Content: "const x = require('lodashX1');\n"})
	// "lodash.1" would match "lodashX1" if the dot were a wildcard.
	if ms := NewScanner().FromSource(a, map[string]bool{"lodash.1": true}); len(ms) != 0 {
		t.Fatalf("unescaped dot matched: %v", ms)
	}
}
