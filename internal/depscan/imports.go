package depscan

import (
	"regexp"
	"sort"
	"strings"

	"malgraph/internal/ecosys"
)

// Corpus-scale note: §III-C searches every malicious package name inside
// every package's source. Done literally that is |names| × |packages| string
// scans. ExtractImports inverts the search: each source file is parsed once
// for import/require statements and the imported names are then matched
// against the corpus dictionary in O(1) — identical confirmed matches, linear
// cost.

var (
	pyImportRe     = regexp.MustCompile(`(?m)^\s*import\s+([\w.]+)`)
	pyFromImportRe = regexp.MustCompile(`(?m)^\s*from\s+([\w.]+)\s+import\b`)
	jsRequireRe    = regexp.MustCompile(`require\(\s*['"]([\w./@-]+)['"]\s*\)`)
	jsImportFromRe = regexp.MustCompile(`import\s+[\w.{},*$\s]*?from\s+['"]([\w./@-]+)['"]`)
	jsImportBareRe = regexp.MustCompile(`import\s+['"]([\w./@-]+)['"]`)
	rbRequireRe    = regexp.MustCompile(`(?m)^\s*require\s+['"]([\w./-]+)['"]`)
)

// importProbe pairs an import regexp with a literal substring every match
// must contain; strings.Contains is an order of magnitude cheaper than
// entering the regexp engine, so files without the keyword skip it outright.
type importProbe struct {
	re      *regexp.Regexp
	keyword string
}

var (
	pyProbes = []importProbe{{pyImportRe, "import"}, {pyFromImportRe, "import"}}
	rbProbes = []importProbe{{rbRequireRe, "require"}}
	jsProbes = []importProbe{{jsRequireRe, "require("}, {jsImportFromRe, "import"}, {jsImportBareRe, "import"}}
)

// ExtractImports returns the set of top-level module names imported by the
// artifact's source files, with comment-line references filtered out.
func ExtractImports(a *ecosys.Artifact) []string {
	found := make(map[string]bool)
	for _, f := range a.SourceFiles() {
		var probes []importProbe
		switch {
		case strings.HasSuffix(f.Path, ".py"):
			probes = pyProbes
		case strings.HasSuffix(f.Path, ".rb"):
			probes = rbProbes
		default:
			probes = jsProbes
		}
		for _, probe := range probes {
			if !strings.Contains(f.Content, probe.keyword) {
				continue
			}
			re := probe.re
			for _, m := range re.FindAllStringSubmatchIndex(f.Content, -1) {
				if InComment(f.Content, m[0]) {
					continue
				}
				name := f.Content[m[2]:m[3]]
				found[topLevel(name)] = true
			}
		}
	}
	out := make([]string, 0, len(found))
	for name := range found {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// topLevel reduces "pygrata.utils" or "./lib/x" to the installable package
// name the registry knows.
func topLevel(name string) string {
	name = strings.TrimPrefix(name, "./")
	name = strings.TrimPrefix(name, "../")
	if i := strings.IndexByte(name, '.'); i > 0 && !strings.Contains(name, "/") {
		name = name[:i]
	}
	if i := strings.IndexByte(name, '/'); i > 0 && !strings.HasPrefix(name, "@") {
		name = name[:i]
	}
	return name
}

// MaliciousDepsFast is the linear-time equivalent of MaliciousDeps for
// corpus-scale pipelines: manifest names plus extracted imports, intersected
// with the malicious-corpus dictionary.
func (s *Scanner) MaliciousDepsFast(a *ecosys.Artifact, corpus map[string]bool) ([]string, error) {
	found := make(map[string]bool)
	manifestDeps, err := s.FromManifest(a)
	if err != nil {
		return nil, err
	}
	for _, d := range manifestDeps {
		if corpus[d] && d != a.Coord.Name {
			found[d] = true
		}
	}
	for _, d := range ExtractImports(a) {
		if corpus[d] && d != a.Coord.Name {
			found[d] = true
		}
	}
	out := make([]string, 0, len(found))
	for d := range found {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}
