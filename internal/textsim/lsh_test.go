package textsim

import (
	"fmt"
	"reflect"
	"testing"

	"malgraph/internal/xrand"
)

// lshFixture returns items with known band structure: a1/a2/b1/bridge share
// one code direction (verification passes), c1 is orthogonal; a* and b1
// collide in no band until bridge links both.
func lshFixture() []Item {
	same := []float64{1, 0}
	return []Item{
		{ID: "a1", Hash: 0x1111111111111111, Vector: same},
		{ID: "a2", Hash: 0x1111111111111111, Vector: same}, // same partition as a1
		{ID: "b1", Hash: 0x2222222222222222, Vector: same}, // no shared band with a*
		{ID: "c1", Hash: 0xF0F0F0F0F0F0F0F0, Vector: []float64{0, 1}},
		{ID: "bridge", Hash: 0x2222222211111111, Vector: same}, // low bands hit a*, high bands hit b1
	}
}

func addAll(x *LSHIndex, items []Item) {
	for _, it := range items {
		x.Add(it.ID, it.Hash, it.Vector)
	}
}

func TestLSHIndexPartitions(t *testing.T) {
	x := NewLSHIndex(ClusterConfig{LSHBands: 8, Threshold: 0.7})
	addAll(x, lshFixture()[:4]) // no bridge yet
	if got := x.Partitions(); !reflect.DeepEqual(got, []string{"a1", "b1", "c1"}) {
		t.Fatalf("partitions = %v", got)
	}
	if got := x.Members("a1"); !reflect.DeepEqual(got, []string{"a1", "a2"}) {
		t.Fatalf("members(a1) = %v", got)
	}
	if got := x.Members("a2"); got != nil {
		t.Fatalf("a2 is not canonical, members = %v", got)
	}
	if root, ok := x.Root("a2"); !ok || root != "a1" {
		t.Fatalf("root(a2) = %q, %v", root, ok)
	}
	if _, ok := x.Root("nope"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

func TestLSHIndexMergeRetiresKeys(t *testing.T) {
	fixture := lshFixture()
	x := NewLSHIndex(ClusterConfig{LSHBands: 8, Threshold: 0.7})
	addAll(x, fixture[:4])
	if retired := x.DrainRetired(); len(retired) == 0 {
		// a2 was briefly canonical of itself before merging into a1.
		t.Fatalf("expected a2 retirement, got %v", retired)
	}
	x.Add(fixture[4].ID, fixture[4].Hash, fixture[4].Vector)
	// bridge connects {a1,a2} with {b1}: one partition keyed a1 survives.
	if got := x.Partitions(); !reflect.DeepEqual(got, []string{"a1", "c1"}) {
		t.Fatalf("partitions after bridge = %v", got)
	}
	if got := x.Members("a1"); !reflect.DeepEqual(got, []string{"a1", "a2", "b1", "bridge"}) {
		t.Fatalf("merged members = %v", got)
	}
	retired := x.DrainRetired()
	found := false
	for _, k := range retired {
		if k == "b1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("b1 must retire on merge, got %v", retired)
	}
	if again := x.DrainRetired(); again != nil {
		t.Fatalf("drain must clear: %v", again)
	}
	// Re-adding a known ID is a no-op.
	x.Add("bridge", 0xFFFFFFFFFFFFFFFF, []float64{1, 0})
	if got := x.Partitions(); !reflect.DeepEqual(got, []string{"a1", "c1"}) {
		t.Fatalf("re-add changed partitions: %v", got)
	}
}

// TestLSHIndexVerification pins what keeps partitions family-sized at scale:
// a band collision alone (here: identical fingerprints) must NOT merge two
// items whose vectors fail the cosine threshold.
func TestLSHIndexVerification(t *testing.T) {
	x := NewLSHIndex(ClusterConfig{LSHBands: 8, Threshold: 0.7})
	x.Add("p", 0x1234123412341234, []float64{1, 0})
	x.Add("q", 0x1234123412341234, []float64{0, 1}) // every band collides, cosine 0
	if got := x.Partitions(); !reflect.DeepEqual(got, []string{"p", "q"}) {
		t.Fatalf("unverified collision merged partitions: %v", got)
	}
	x.Add("r", 0x1234123412341234, []float64{1, 0}) // verifies against p only
	if got := x.Members("p"); !reflect.DeepEqual(got, []string{"p", "r"}) {
		t.Fatalf("verified pair not merged: %v", got)
	}
}

// TestLSHIndexOrderIndependence is the content-derivation contract: any
// insertion order yields identical partitions, canonical keys and members.
func TestLSHIndexOrderIndependence(t *testing.T) {
	items := lshFixture()
	var want map[string][]string
	for trial := 0; trial < 10; trial++ {
		order := make([]Item, len(items))
		copy(order, items)
		rng := xrand.New(uint64(trial + 1))
		for i := len(order) - 1; i > 0; i-- {
			j := int(rng.Uint64() % uint64(i+1))
			order[i], order[j] = order[j], order[i]
		}
		x := NewLSHIndex(ClusterConfig{LSHBands: 8, Threshold: 0.7})
		addAll(x, order)
		got := make(map[string][]string)
		for _, key := range x.Partitions() {
			got[key] = x.Members(key)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: partitions differ:\n got %v\nwant %v", trial, got, want)
		}
	}
}

// TestLSHPartitionsCoverClusters pins the structural invariant the engine's
// partial re-clustering rests on: for a family-structured corpus, whole-run
// clusters never span verified partitions, and clustering each partition
// separately recovers the same cluster memberships. (Silhouette values may
// legitimately differ — a lone-cluster partition scores its separation
// against no neighbours — which is the documented banding relaxation; the
// engine's pinned contract is incremental == one-shot through the same
// partitioned path, tested at the core and API layers.)
func TestLSHPartitionsCoverClusters(t *testing.T) {
	items := makeItems(t, 5, 4) // 5 families × 4 variants (textsim_test.go)
	cfg := DefaultClusterConfig()
	whole := ClusterItems(items, cfg, xrand.New(1))
	if len(whole) == 0 {
		t.Fatal("fixture produced no clusters")
	}

	x := NewLSHIndex(cfg)
	byID := make(map[string]Item)
	for _, it := range items {
		x.Add(it.ID, it.Hash, it.Vector)
		byID[it.ID] = it
	}
	rootOf := func(id string) string {
		root, ok := x.Root(id)
		if !ok {
			t.Fatalf("unindexed member %s", id)
		}
		return root
	}
	var split []Cluster
	for _, key := range x.Partitions() {
		var part []Item
		for _, id := range x.Members(key) {
			part = append(part, byID[id])
		}
		split = append(split, ClusterItems(part, cfg, xrand.New(1))...)
	}
	for _, c := range whole {
		root := rootOf(c.Members[0])
		for _, m := range c.Members {
			if rootOf(m) != root {
				t.Fatalf("cluster spans partitions: %v", c.Members)
			}
		}
	}
	members := func(cs []Cluster) map[string]bool {
		m := make(map[string]bool)
		for _, c := range cs {
			m[fmt.Sprintf("%v", c.Members)] = true
		}
		return m
	}
	if ws, ss := members(whole), members(split); !reflect.DeepEqual(ws, ss) {
		t.Errorf("cluster memberships differ:\n whole %v\n split %v", ws, ss)
	}
}

// TestClusterItemsScratchReuse re-clusters different inputs through one
// shared Scratch and requires bit-identical output to scratch-free calls —
// no state may leak between calls.
func TestClusterItemsScratchReuse(t *testing.T) {
	sc := NewScratch()
	inputs := [][]Item{
		makeItems(t, 4, 5),
		makeItems(t, 2, 3),
		nil,
		makeItems(t, 3, 1),
		makeItems(t, 4, 5),
	}
	for round := 0; round < 2; round++ { // second pass reuses warmed buffers
		for i, items := range inputs {
			want := ClusterItems(items, DefaultClusterConfig(), xrand.New(9))
			got := ClusterItemsScratch(items, DefaultClusterConfig(), xrand.New(9), sc)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d input %d: scratch result differs", round, i)
			}
		}
	}
}
