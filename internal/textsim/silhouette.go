package textsim

// ExactSilhouette computes the true silhouette coefficient (Rousseeuw 1987)
// per cluster under cosine distance — the statistic the paper computes with
// scikit-learn. It is O(n²) and therefore reserved for validation and small
// corpora; the clustering pipeline uses SimplifiedSilhouette, whose
// centroid approximation this function exists to sanity-check (see
// TestSilhouetteAgreement).
//
// Per scikit convention, points in singleton clusters score 0.
func ExactSilhouette(vecs [][]float64, assign []int, k int) []float64 {
	if k == 0 {
		return nil
	}
	members := make([][]int, k)
	for i, c := range assign {
		if c >= 0 && c < k {
			members[c] = append(members[c], i)
		}
	}
	// Pairwise cosine distances, computed lazily per point against each
	// cluster to avoid materialising the full n×n matrix.
	meanDistTo := func(i int, cluster []int, excludeSelf bool) (float64, int) {
		var sum float64
		n := 0
		for _, j := range cluster {
			if excludeSelf && j == i {
				continue
			}
			sum += 1 - Cosine(vecs[i], vecs[j])
			n++
		}
		if n == 0 {
			return 0, 0
		}
		return sum / float64(n), n
	}

	sums := make([]float64, k)
	counts := make([]int, k)
	for c := 0; c < k; c++ {
		for _, i := range members[c] {
			if len(members[c]) < 2 {
				// Singleton cluster: silhouette defined as 0.
				counts[c]++
				continue
			}
			a, _ := meanDistTo(i, members[c], true)
			b := -1.0
			for o := 0; o < k; o++ {
				if o == c || len(members[o]) == 0 {
					continue
				}
				if d, n := meanDistTo(i, members[o], false); n > 0 && (b < 0 || d < b) {
					b = d
				}
			}
			if b < 0 {
				// No other cluster exists; treat as maximally separated.
				b = 1
			}
			den := a
			if b > den {
				den = b
			}
			s := 0.0
			if den > 0 {
				s = (b - a) / den
			}
			sums[c] += s
			counts[c]++
		}
	}
	out := make([]float64, k)
	for c := range out {
		if counts[c] > 0 {
			out[c] = sums[c] / float64(counts[c])
		}
	}
	return out
}
