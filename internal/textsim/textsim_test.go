package textsim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"malgraph/internal/xrand"
)

func TestTokenizeBasics(t *testing.T) {
	src := `const url = "https://evil.example/x";` + "\n" + `exec(payload_42, 3.14)`
	tokens := Tokenize(src)
	joined := strings.Join(tokens, " ")
	for _, want := range []string{"const", "url", "https", "exec", "payload_42", "3.14"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("token %q missing from %v", want, tokens)
		}
	}
}

func TestTokenizeStringContents(t *testing.T) {
	tokens := Tokenize(`x = "10.0.0.1"`)
	joined := strings.Join(tokens, " ")
	if !strings.Contains(joined, "10.0.0.1") {
		t.Fatalf("string literal contents must survive tokenisation: %v", tokens)
	}
}

func TestTokenizeLongLiteralSplit(t *testing.T) {
	blob := strings.Repeat("A", 100)
	tokens := Tokenize(`b = "` + blob + `"`)
	for _, tok := range tokens {
		if len(tok) > 16 {
			t.Fatalf("long literal not split: %q", tok)
		}
	}
}

func TestTokenizeEscapedQuote(t *testing.T) {
	tokens := Tokenize(`s = "a\"b"` + "\nnext_ident")
	joined := strings.Join(tokens, " ")
	if !strings.Contains(joined, "next_ident") {
		t.Fatalf("escaped quote broke tokenisation: %v", tokens)
	}
}

func TestSnippets(t *testing.T) {
	tokens := make([]string, 1100)
	for i := range tokens {
		tokens[i] = "t"
	}
	snips := Snippets(tokens, 512)
	if len(snips) != 3 {
		t.Fatalf("want 3 snippets, got %d", len(snips))
	}
	if len(snips[0]) != 512 || len(snips[2]) != 76 {
		t.Fatalf("snippet sizes: %d, %d", len(snips[0]), len(snips[2]))
	}
	if Snippets(nil, 512) != nil {
		t.Fatal("empty tokens must give nil")
	}
	if Snippets(tokens, 0) != nil {
		t.Fatal("non-positive window must give nil")
	}
}

func TestEmbedderFixedLengthAndNormalised(t *testing.T) {
	e := NewEmbedder(EmbedConfig{})
	short := e.EmbedSource("payload = fetch(endpoint)")
	long := e.EmbedSource(strings.Repeat("def handler(request): upload(request.headers)\n", 500))
	if len(short) != e.Config().Dim() || len(long) != e.Config().Dim() {
		t.Fatalf("vector lengths differ: %d vs %d", len(short), len(long))
	}
	for _, v := range [][]float64{short, long} {
		var ss float64
		for _, x := range v {
			ss += x * x
		}
		if math.Abs(ss-1) > 1e-9 {
			t.Fatalf("vector not L2-normalised: %v", ss)
		}
	}
}

func TestEmbedEmptySource(t *testing.T) {
	e := NewEmbedder(EmbedConfig{})
	v := e.EmbedSource("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty source must embed to zero vector")
		}
	}
}

func TestSameCodeSimilarEmbedding(t *testing.T) {
	e := NewEmbedder(EmbedConfig{})
	base := strings.Repeat("def collect(env):\n    return send(env, url)\n", 40)
	variant := strings.Replace(base, "url", "url2", 1) // a one-token CC change
	unrelated := strings.Repeat("class Parser:\n    def walk(self, tree): yield tree\n", 40)

	simVariant := Cosine(e.EmbedSource(base), e.EmbedSource(variant))
	simUnrelated := Cosine(e.EmbedSource(base), e.EmbedSource(unrelated))
	if simVariant < 0.95 {
		t.Fatalf("one-line variant similarity %v too low", simVariant)
	}
	if simUnrelated > simVariant {
		t.Fatalf("unrelated code (%v) more similar than variant (%v)", simUnrelated, simVariant)
	}
}

func TestCosineProperties(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v)
		}
		self := Cosine(a, a)
		allZero := true
		for _, v := range a {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return self == 0
		}
		return math.Abs(self-1) < 1e-9 && Cosine(a, a) <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosineZeroVector(t *testing.T) {
	if got := Cosine([]float64{0, 0}, []float64{1, 2}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}

func TestSimHashLocality(t *testing.T) {
	base := strings.Repeat("send(environ, endpoint_url)\n", 60)
	variant := strings.Replace(base, "endpoint_url", "endpoint_url2", 2)
	unrelated := strings.Repeat("matrix.transpose().rows.filter(even)\n", 60)

	hBase := SimHash(Tokenize(base))
	hVar := SimHash(Tokenize(variant))
	hUn := SimHash(Tokenize(unrelated))

	if popcount(hBase^hVar) >= popcount(hBase^hUn) {
		t.Fatalf("SimHash not locality sensitive: variant dist %d, unrelated dist %d",
			popcount(hBase^hVar), popcount(hBase^hUn))
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestBands(t *testing.T) {
	b := Bands(0xDEADBEEFCAFEF00D, 4)
	if len(b) != 4 {
		t.Fatalf("want 4 bands, got %d", len(b))
	}
	if b[0] != 0xF00D || b[3] != 0xDEAD {
		t.Fatalf("band extraction wrong: %x", b)
	}
	if got := Bands(1, 0); len(got) != 4 {
		t.Fatal("zero bands must default to 4")
	}
}

func makeItems(t *testing.T, families int, perFamily int) []Item {
	t.Helper()
	e := NewEmbedder(EmbedConfig{})
	var items []Item
	for f := 0; f < families; f++ {
		base := strings.Repeat(fmt.Sprintf("def family%d(a, b):\n    return upload%d(a) + b\n", f, f), 30+7*f)
		for p := 0; p < perFamily; p++ {
			src := base
			if p > 0 { // small CC-style perturbation
				src = strings.Replace(src, "upload", fmt.Sprintf("upload_%d_", p), 1)
			}
			tokens := Tokenize(src)
			items = append(items, Item{
				ID:     fmt.Sprintf("f%d-p%d", f, p),
				Vector: e.EmbedTokens(tokens),
				Hash:   SimHash(tokens),
			})
		}
	}
	return items
}

func TestClusterRecoversFamilies(t *testing.T) {
	items := makeItems(t, 4, 5)
	clusters := ClusterItems(items, DefaultClusterConfig(), xrand.New(1))
	if len(clusters) != 4 {
		t.Fatalf("want 4 clusters, got %d", len(clusters))
	}
	for _, c := range clusters {
		if len(c.Members) != 5 {
			t.Fatalf("cluster size %d, want 5: %v", len(c.Members), c.Members)
		}
		family := c.Members[0][:2]
		for _, m := range c.Members {
			if m[:2] != family {
				t.Fatalf("mixed cluster: %v", c.Members)
			}
		}
		if c.IntraSim < 0.95 {
			t.Fatalf("intra-group similarity %v below the ~0.999 the paper reports", c.IntraSim)
		}
		if c.Silhouette < 0.3 {
			t.Fatalf("surviving cluster has silhouette %v < 0.3", c.Silhouette)
		}
	}
}

func TestClusterDropsSingletons(t *testing.T) {
	items := makeItems(t, 3, 1) // three unrelated singletons
	clusters := ClusterItems(items, DefaultClusterConfig(), xrand.New(2))
	if len(clusters) != 0 {
		t.Fatalf("singletons must not form subgraphs (MinSize 2): %v", clusters)
	}
}

func TestClusterEmptyInput(t *testing.T) {
	if got := ClusterItems(nil, DefaultClusterConfig(), xrand.New(3)); got != nil {
		t.Fatal("empty input must give nil clusters")
	}
}

func TestClusterDeterminism(t *testing.T) {
	items := makeItems(t, 3, 4)
	a := ClusterItems(items, DefaultClusterConfig(), xrand.New(7))
	b := ClusterItems(items, DefaultClusterConfig(), xrand.New(7))
	if len(a) != len(b) {
		t.Fatalf("non-deterministic cluster count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i].Members, ",") != strings.Join(b[i].Members, ",") {
			t.Fatalf("non-deterministic membership at %d", i)
		}
	}
}

func TestKMeansUnassignedBelowThreshold(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}}
	seeds := [][]float64{{1, 0}}
	assign := KMeans(vecs, seeds, 4, 0.7)
	if assign[0] != 0 {
		t.Fatalf("aligned vector unassigned: %v", assign)
	}
	if assign[1] != -1 {
		t.Fatalf("orthogonal vector must be unassigned: %v", assign)
	}
}

func TestKMeansNoSeeds(t *testing.T) {
	assign := KMeans([][]float64{{1}}, nil, 3, 0.7)
	if assign[0] != -1 {
		t.Fatal("no seeds must leave everything unassigned")
	}
}

func TestSimplifiedSilhouetteSeparatedClusters(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0.99, 0.01}, {0, 1}, {0.01, 0.99}}
	assign := []int{0, 0, 1, 1}
	sil := SimplifiedSilhouette(vecs, assign, 2)
	for c, s := range sil {
		if s < 0.5 {
			t.Fatalf("well-separated cluster %d has silhouette %v", c, s)
		}
	}
}

func TestSimplifiedSilhouetteSingleCluster(t *testing.T) {
	vecs := [][]float64{{1, 0}, {1, 0}}
	sil := SimplifiedSilhouette(vecs, []int{0, 0}, 1)
	if sil[0] < 0.9 {
		t.Fatalf("lone tight cluster silhouette %v", sil[0])
	}
}

func TestSimplifiedSilhouetteZeroK(t *testing.T) {
	if got := SimplifiedSilhouette(nil, nil, 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
}
