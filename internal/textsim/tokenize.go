// Package textsim implements the code-similarity pipeline of §III-B: source
// tokenisation, fixed-length snippet embedding, package-level vectors,
// K-Means clustering under cosine similarity, and silhouette-score filtering.
//
// The paper embeds 512-token snippets with CodeBERT-base and concatenates the
// snippet vectors. Our substitute embeds each snippet with feature-hashed
// term frequencies: a classic locality-preserving code fingerprint that keeps
// the property the pipeline relies on — packages sharing a code base map to
// near-identical vectors (intra-group cosine ≈ 0.999) while unrelated code
// maps far apart. A 64-bit SimHash plus banded LSH provides the candidate
// pre-filter that makes corpus-scale clustering tractable.
package textsim

import (
	"strings"
	"unicode"
)

// Tokenize splits source code into tokens: identifiers/keywords, number
// literals, string-literal contents, and single punctuation runes. It is
// language-agnostic across the .py/.js/.rb corpus.
func Tokenize(src string) []string {
	return TokenizeAppend(nil, src)
}

// TokenizeAppend tokenizes src, appending to dst (which may be nil or a
// recycled buffer with its length reset to 0). Hot loops that tokenize many
// artifacts reuse one buffer per worker instead of growing a fresh []string
// for every package.
func TokenizeAppend(dst []string, src string) []string {
	tokens := dst
	if cap(tokens) == 0 {
		tokens = make([]string, 0, len(src)/6)
	}
	i := 0
	n := len(src)
	for i < n {
		c := rune(src[i])
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case isIdentStart(c):
			j := i + 1
			for j < n && isIdentPart(rune(src[j])) {
				j++
			}
			tokens = append(tokens, src[i:j])
			i = j
		case unicode.IsDigit(c):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(src[j])) || src[j] == '.') {
				j++
			}
			tokens = append(tokens, src[i:j])
			i = j
		case c == '"' || c == '\'' || c == '`':
			quote := src[i]
			j := i + 1
			for j < n && src[j] != quote {
				if src[j] == '\\' && j+1 < n {
					j++
				}
				j++
			}
			inner := src[i+1 : min(j, n)]
			// String contents matter (URLs, IPs, base64 blobs are the very
			// things CC operations change) but long blobs are split so one
			// giant literal does not dominate the snippet.
			for _, part := range splitLongLiteral(inner) {
				tokens = append(tokens, part)
			}
			i = j + 1
		default:
			if !unicode.IsSpace(c) {
				tokens = append(tokens, string(c))
			}
			i++
		}
	}
	return tokens
}

func splitLongLiteral(s string) []string {
	const chunk = 16
	if len(s) <= chunk {
		if s == "" {
			return nil
		}
		return []string{s}
	}
	out := make([]string, 0, len(s)/chunk+1)
	for len(s) > chunk {
		out = append(out, s[:chunk])
		s = s[chunk:]
	}
	if s != "" {
		out = append(out, s)
	}
	return out
}

func isIdentStart(c rune) bool {
	return c == '_' || c == '$' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return isIdentStart(c) || unicode.IsDigit(c)
}

// Snippets splits tokens into consecutive windows of size tokensPer
// (paper: 512 tokens per CodeBERT snippet). The final partial window is kept.
func Snippets(tokens []string, tokensPer int) [][]string {
	if tokensPer <= 0 || len(tokens) == 0 {
		return nil
	}
	out := make([][]string, 0, len(tokens)/tokensPer+1)
	for start := 0; start < len(tokens); start += tokensPer {
		end := min(start+tokensPer, len(tokens))
		out = append(out, tokens[start:end])
	}
	return out
}

// NormalizeToken lower-cases and trims a token for hashing.
func NormalizeToken(t string) string { return strings.ToLower(t) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
