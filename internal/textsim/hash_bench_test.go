package textsim

import "testing"

// Micro-benchmarks for the §III-B kernels. Run with -benchmem: the hashed
// path exists precisely to take EmbedTokens/SimHash allocations from
// hundreds per package (stdlib fnv hasher + ToLower per token, twice) to a
// handful, and Dot to remove two thirds of Cosine's memory traffic.

var benchTokens = Tokenize(sampleSource(4000))

func BenchmarkEmbedTokens(b *testing.B) {
	e := NewEmbedder(DefaultEmbedConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.EmbedTokens(benchTokens)
	}
}

func BenchmarkSimHash(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = SimHash(benchTokens)
	}
}

// BenchmarkSharedHashedStream is the production path: one HashTokens pass
// (into a recycled buffer) feeding both the embedding and the fingerprint.
func BenchmarkSharedHashedStream(b *testing.B) {
	e := NewEmbedder(DefaultEmbedConfig())
	var buf []TokenHash
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = HashTokens(benchTokens, buf)
		_ = e.EmbedHashed(buf)
		_ = SimHashHashed(buf)
	}
}

func BenchmarkDot(b *testing.B) {
	e := NewEmbedder(DefaultEmbedConfig())
	x := e.EmbedSource(sampleSource(900))
	y := e.EmbedSource(sampleSource(1100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func BenchmarkCosine(b *testing.B) {
	e := NewEmbedder(DefaultEmbedConfig())
	x := e.EmbedSource(sampleSource(900))
	y := e.EmbedSource(sampleSource(1100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Cosine(x, y)
	}
}
