package textsim

// Ablation benchmarks for the similarity pipeline's design choices:
// LSH band count (candidate recall vs candidate volume), embedding
// dimensionality (speed vs separation), and the rescue-merge pass.

import (
	"fmt"
	"strings"
	"testing"

	"malgraph/internal/xrand"
)

// ablationCorpus builds nFamilies code families with variants plus
// singletons — the group structure the clustering stage must recover.
func ablationCorpus(nFamilies, perFamily, singletons int, cfg EmbedConfig) []Item {
	e := NewEmbedder(cfg)
	var items []Item
	for f := 0; f < nFamilies; f++ {
		base := strings.Repeat(fmt.Sprintf(
			"def family%dcollect(batch%d, sink%d):\n    payload%d = encode%d(batch%d)\n    return upload%d(payload%d, sink%d)\n",
			f, f, f, f, f, f, f, f, f), 25)
		for p := 0; p < perFamily; p++ {
			src := base
			if p > 0 {
				src = strings.Replace(src, "upload", fmt.Sprintf("upload%dvar", p), 2)
			}
			tokens := Tokenize(src)
			items = append(items, Item{
				ID:     fmt.Sprintf("f%d-p%d", f, p),
				Vector: e.EmbedTokens(tokens),
				Hash:   SimHash(tokens),
			})
		}
	}
	for s := 0; s < singletons; s++ {
		src := strings.Repeat(fmt.Sprintf(
			"def lone%dhandler(ctx%d):\n    return transform%d(ctx%d.rows)\n", s, s, s, s), 20+s%7)
		tokens := Tokenize(src)
		items = append(items, Item{
			ID:     fmt.Sprintf("lone-%d", s),
			Vector: e.EmbedTokens(tokens),
			Hash:   SimHash(tokens),
		})
	}
	return items
}

// BenchmarkAblation_LSHBands sweeps the SimHash band count. More, narrower
// bands raise candidate recall (fewer missed variants) at the cost of more
// cosine verifications.
func BenchmarkAblation_LSHBands(b *testing.B) {
	items := ablationCorpus(30, 8, 200, DefaultEmbedConfig())
	for _, bands := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("bands=%d", bands), func(b *testing.B) {
			cfg := DefaultClusterConfig()
			cfg.LSHBands = bands
			var clusters []Cluster
			for i := 0; i < b.N; i++ {
				clusters = ClusterItems(items, cfg, xrand.New(1))
			}
			recovered := 0
			for _, c := range clusters {
				recovered += len(c.Members)
			}
			b.ReportMetric(float64(len(clusters)), "clusters")
			b.ReportMetric(float64(recovered), "clustered_items")
		})
	}
}

// BenchmarkAblation_EmbeddingDim sweeps the per-snippet hash dimensionality:
// small dims collide families together, large dims cost linear time/memory.
func BenchmarkAblation_EmbeddingDim(b *testing.B) {
	for _, dim := range []int{16, 32, 64, 128} {
		b.Run(fmt.Sprintf("dim=%d", dim), func(b *testing.B) {
			cfg := EmbedConfig{SnippetTokens: 512, SnippetDim: dim, MaxSnippets: 4}
			items := ablationCorpus(30, 8, 200, cfg)
			b.ResetTimer()
			var clusters []Cluster
			for i := 0; i < b.N; i++ {
				clusters = ClusterItems(items, DefaultClusterConfig(), xrand.New(1))
			}
			pure := 0
			for _, c := range clusters {
				fam := strings.SplitN(c.Members[0], "-", 2)[0]
				ok := true
				for _, m := range c.Members {
					if strings.SplitN(m, "-", 2)[0] != fam {
						ok = false
						break
					}
				}
				if ok {
					pure++
				}
			}
			b.ReportMetric(float64(len(clusters)), "clusters")
			b.ReportMetric(float64(pure), "pure_clusters")
		})
	}
}

// BenchmarkAblation_RescueMerge toggles the centroid rescue pass by raising
// the LSH band width so much that LSH alone misses variants.
func BenchmarkAblation_RescueMerge(b *testing.B) {
	items := ablationCorpus(20, 6, 100, DefaultEmbedConfig())
	cfg := DefaultClusterConfig()
	cfg.LSHBands = 2 // coarse bands: LSH alone misses drifted variants
	var clusters []Cluster
	for i := 0; i < b.N; i++ {
		clusters = ClusterItems(items, cfg, xrand.New(1))
	}
	total := 0
	for _, c := range clusters {
		total += len(c.Members)
	}
	b.ReportMetric(float64(total), "clustered_items")
}

// BenchmarkClusterItems_ScratchReuse measures the steady-state allocation
// profile of repeated clustering through one pooled Scratch — the incremental
// engine's per-partition re-clustering pattern — against the scratch-free
// baseline BenchmarkClusterItems_NoScratch.
func BenchmarkClusterItems_NoScratch(b *testing.B) {
	items := ablationCorpus(30, 8, 200, DefaultEmbedConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClusterItems(items, DefaultClusterConfig(), xrand.New(1))
	}
}

func BenchmarkClusterItems_ScratchReuse(b *testing.B) {
	items := ablationCorpus(30, 8, 200, DefaultEmbedConfig())
	sc := NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ClusterItemsScratch(items, DefaultClusterConfig(), xrand.New(1), sc)
	}
}
