package textsim

import (
	"hash/fnv"
	"math"
	"runtime"
	"testing"
)

// refHash is the stdlib FNV-1a the inline implementation replaces.
func refHash(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}

func TestInlineFNVMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "requests", "HTTP", "päckage", "0x41_base64_chunk"} {
		if got, want := fnv1a64(s), refHash(s); got != want {
			t.Errorf("fnv1a64(%q) = %#x, stdlib %#x", s, got, want)
		}
	}
}

// TestHashTokensMatchesReference checks the shared pass against the
// NormalizeToken+Informative+FNV composition it replaces, including ASCII
// case folding, stopwords, pure numbers, short tokens and non-ASCII input.
func TestHashTokensMatchesReference(t *testing.T) {
	tokens := []string{
		"exfiltrate", "Exfiltrate", "EXFILTRATE", // case folding
		"def", "Return", "IMPORT", // stopwords in any case
		"ab", "x", "", // too short
		"12345", "3.14", // pure numbers / punctuation digits
		"base64chunk01", "10x", // mixed alphanumerics stay
		"péché", "ÜBER", // non-ASCII slow path
		"requests", "reqUests",
	}
	hashed := HashTokens(tokens, nil)
	if len(hashed) != len(tokens) {
		t.Fatalf("HashTokens length %d, want %d", len(hashed), len(tokens))
	}
	for i, tok := range tokens {
		norm := NormalizeToken(tok)
		wantSkip := !Informative(norm)
		if hashed[i].Skip != wantSkip {
			t.Errorf("token %q: Skip = %v, want %v", tok, hashed[i].Skip, wantSkip)
			continue
		}
		if !wantSkip && hashed[i].Hash != refHash(norm) {
			t.Errorf("token %q: hash %#x, want %#x", tok, hashed[i].Hash, refHash(norm))
		}
	}
	// Buffer reuse must not change results.
	reused := HashTokens(tokens, hashed)
	for i := range reused {
		if reused[i] != hashed[i] {
			t.Errorf("reused buffer diverges at %d", i)
		}
	}
}

func TestEmbedHashedMatchesEmbedTokens(t *testing.T) {
	src := sampleSource(2000)
	tokens := Tokenize(src)
	e := NewEmbedder(DefaultEmbedConfig())
	direct := e.EmbedTokens(tokens)
	viaHash := e.EmbedHashed(HashTokens(tokens, nil))
	if len(direct) != len(viaHash) {
		t.Fatalf("lengths differ: %d vs %d", len(direct), len(viaHash))
	}
	for i := range direct {
		if direct[i] != viaHash[i] {
			t.Fatalf("dim %d: %v vs %v", i, direct[i], viaHash[i])
		}
	}
}

func TestSimHashHashedMatchesSimHash(t *testing.T) {
	tokens := Tokenize(sampleSource(1500))
	if got, want := SimHashHashed(HashTokens(tokens, nil)), SimHash(tokens); got != want {
		t.Fatalf("SimHashHashed %#x, SimHash %#x", got, want)
	}
}

func TestDotEqualsCosineForNormalisedVectors(t *testing.T) {
	e := NewEmbedder(DefaultEmbedConfig())
	a := e.EmbedSource(sampleSource(900))
	b := e.EmbedSource(sampleSource(1100))
	dot, cos := Dot(a, b), Cosine(a, b)
	if math.Abs(dot-cos) > 1e-12 {
		t.Fatalf("Dot %v vs Cosine %v on normalised vectors", dot, cos)
	}
	// Unnormalised inputs still need Cosine.
	a2 := []float64{2, 0}
	b2 := []float64{2, 0}
	if got := Cosine(a2, b2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine on unnormalised = %v, want 1", got)
	}
}

func TestTokenizeAppendReusesBuffer(t *testing.T) {
	src := sampleSource(300)
	want := Tokenize(src)
	buf := make([]string, 0, 4096)
	got := TokenizeAppend(buf[:0], src)
	if len(got) != len(want) {
		t.Fatalf("token counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestKMeansDeterministicAcrossWorkers pins the parallel assignment and
// silhouette loops: fixed chunk boundaries must make results bit-identical
// under any GOMAXPROCS.
func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	e := NewEmbedder(EmbedConfig{SnippetTokens: 64, SnippetDim: 16, MaxSnippets: 2})
	var vecs [][]float64
	for i := 0; i < 700; i++ {
		vecs = append(vecs, e.EmbedSource(sampleSource(120+i)))
	}
	seeds := [][]float64{vecs[0], vecs[13], vecs[200], vecs[450], vecs[699]}

	run := func(procs int) ([]int, []float64) {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		assign := KMeans(vecs, seeds, 8, 0.3)
		sil := SimplifiedSilhouette(vecs, assign, len(seeds))
		return assign, sil
	}
	seqAssign, seqSil := run(1)
	parAssign, parSil := run(8)
	for i := range seqAssign {
		if seqAssign[i] != parAssign[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, seqAssign[i], parAssign[i])
		}
	}
	for c := range seqSil {
		if seqSil[c] != parSil[c] {
			t.Fatalf("silhouette %d differs bitwise: %v vs %v", c, seqSil[c], parSil[c])
		}
	}
}

// sampleSource generates deterministic pseudo-code with enough identifier
// variety to exercise snippets, stopwords and literals.
func sampleSource(n int) string {
	words := []string{
		"import", "requests", "payload", "exfil", "host", "token42",
		"def", "collect", "send_data", "base64", "urlopen", "bananasquad",
	}
	src := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		w := words[(i*7+i/5)%len(words)]
		src = append(src, w...)
		if i%9 == 0 {
			src = append(src, '(', '\'', 'h', 't', 't', 'p', '\'', ')')
		}
		src = append(src, ' ')
		if i%13 == 0 {
			src = append(src, '\n')
		}
	}
	return string(src)
}
