package textsim

import (
	"sort"
	"sync/atomic"

	"malgraph/internal/parallel"
	"malgraph/internal/xrand"
)

// assignChunk is the fixed work-unit size for parallel assignment and
// silhouette loops. Chunk boundaries depend only on the input length, so
// per-chunk partial sums merged in chunk order are identical under any
// GOMAXPROCS — see internal/parallel.
const assignChunk = 256

// ClusterConfig parameterises the similarity clustering of §III-B step 4.
type ClusterConfig struct {
	// Threshold is the minimum cosine similarity for two packages to join
	// the same group (paper: 0.7).
	Threshold float64
	// MinSilhouette drops clusters whose silhouette score falls below this
	// value (paper: 0.3).
	MinSilhouette float64
	// MinSize drops clusters smaller than this (paper: subgraphs need ≥ 2).
	MinSize int
	// KMeansIters bounds the refinement iterations.
	KMeansIters int
	// LSHBands is the number of SimHash bands used for candidate pairing —
	// and therefore for the partition boundaries of LSHIndex: clusters never
	// span band-connected components, so the incremental engine re-clusters
	// one partition at a time under the same band count.
	LSHBands int
	// MaxBucketProbe caps how many co-bucketed items LSHIndex.Add verifies
	// per band bucket (0 = DefaultMaxBucketProbe; negative = unlimited).
	// Without a cap, a degenerate band bucket — thousands of near-identical
	// fingerprints — makes every append pay O(bucket) dot products, the last
	// corpus-linear term in the similar stage. Capped probing verifies
	// against the bucket's ID-smallest members, which is deterministic for a
	// given item set; batch-order determinism is exact while buckets stay at
	// or under the cap, and past it two insertion orders may differ only in
	// threshold-marginal partition merges.
	MaxBucketProbe int
}

// DefaultMaxBucketProbe is the default per-bucket verification cap. It is
// far above any healthy bucket load (verified partitions stay family-sized)
// and exists to bound the degenerate case, not to tune recall.
const DefaultMaxBucketProbe = 512

// DefaultClusterConfig returns the paper's parameters.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{Threshold: 0.7, MinSilhouette: 0.3, MinSize: 2, KMeansIters: 8, LSHBands: 8}
}

// probeCap resolves MaxBucketProbe's zero/negative conventions.
func (c ClusterConfig) probeCap() int {
	switch {
	case c.MaxBucketProbe < 0:
		return 0 // explicit "unlimited"
	case c.MaxBucketProbe == 0:
		return DefaultMaxBucketProbe
	default:
		return c.MaxBucketProbe
	}
}

// candidateParams resolves the (bands, threshold) pair defining the LSH
// candidate relation under this config, applying exactly the fallbacks
// ClusterItems applies (Threshold == 0 swaps in the full defaults; a
// non-positive band count then falls back the way Bands() does). LSHIndex
// and the clusterer both resolve through here, so partition boundaries and
// intra-partition candidate pairs can never disagree.
func (c ClusterConfig) candidateParams() (bands int, threshold float64) {
	if c.Threshold == 0 {
		c = DefaultClusterConfig()
	}
	bands = c.LSHBands
	if bands <= 0 {
		bands = 4 // the Bands() fallback
	}
	if bands > 16 {
		// The bucket keyspace tags the band index in the key's top nibble
		// (bandKey), and past 16 bands the 4-bit-wide bands stop being
		// selective anyway — clamp rather than silently collide band tags.
		bands = 16
	}
	return bands, c.Threshold
}

// bandKey returns the LSH bucket key of band bi under nBands bands: the
// band's fingerprint bits tagged with the band index in the top nibble.
// This is the single definition of the banded keyspace — ClusterItems'
// candidate generation and LSHIndex partitioning both resolve through it,
// which is what keeps "partition covers candidate pairs" a structural
// invariant rather than a convention.
func bandKey(fingerprint uint64, nBands, bi int) uint64 {
	width := 64 / nBands
	mask := uint64(1)<<uint(width) - 1
	return uint64(bi)<<60 | ((fingerprint >> uint(bi*width)) & mask)
}

// Item is one package entering the clustering stage.
type Item struct {
	ID     string
	Vector []float64
	Hash   uint64 // SimHash fingerprint
}

// Cluster is one similar-code group.
type Cluster struct {
	Members    []string // item IDs, sorted
	Centroid   []float64
	Silhouette float64
	IntraSim   float64 // mean pairwise-to-centroid cosine (paper reports 99.9%)
}

// floatArena hands out zeroed []float64 chunks from one growing backing
// buffer, so a burst of short-lived centroid/seed vectors costs one
// allocation amortised instead of one each. Chunks stay valid until reset.
type floatArena struct{ buf []float64 }

func (a *floatArena) grab(n int) []float64 {
	if len(a.buf)+n > cap(a.buf) {
		c := 2 * cap(a.buf)
		if c < n {
			c = n
		}
		if c < 256 {
			c = 256
		}
		// Old chunks stay alive through the slices already handed out.
		a.buf = make([]float64, 0, c)
	}
	lo := len(a.buf)
	a.buf = a.buf[:lo+n]
	s := a.buf[lo : lo+n : lo+n]
	clear(s)
	return s
}

func (a *floatArena) reset() { a.buf = a.buf[:0] }

// Scratch pools the per-call buffers of the clustering kernels — packed
// centroid matrices, assignment vectors, per-chunk silhouette partial sums,
// seed arenas — so repeated per-partition clustering (the incremental
// engine's steady state) doesn't re-allocate them on every call. A Scratch
// is not safe for concurrent use; pool one per worker. Slices returned by
// scratch-taking functions (KMeans assignments, silhouette scores) are valid
// only until the scratch is used again.
type Scratch struct {
	assign  []int
	liveIdx []int
	counts  []int
	alive   []bool
	parent  []int
	cents   []float64
	sums    []float64
	flat    []float64
	partial []float64
	silSums []float64
	sil     []float64
	pairs   []bucketPair
	vecs    [][]float64
	seeds   [][]float64
	arena   floatArena
}

// bucketPair is one (band key, item index) occurrence; sorted by key it
// reproduces the LSH bucket map without allocating it.
type bucketPair struct {
	key uint64
	idx int
}

// NewScratch returns an empty scratch; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{} }

func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
		return *buf
	}
	s := (*buf)[:n]
	clear(s)
	return s
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
		return *buf
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
		return *buf
	}
	s := (*buf)[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// ClusterItems groups items whose code bases are similar. The pipeline is:
//
//  1. Banded-LSH candidate generation over SimHash fingerprints.
//  2. Union–find merge of candidate pairs whose cosine ≥ Threshold.
//  3. Rescue merge of LSH-missed singletons into multi-member cores.
//  4. K-Means refinement seeded from the merged groups (k = #groups).
//  5. Simplified-silhouette filtering (< MinSilhouette dropped) and MinSize
//     filtering.
//
// The incremental engine applies this function per LSHIndex partition
// (verified band-candidate components) rather than per ecosystem: within a
// partition the function reproduces the partition's internal candidate pairs
// exactly, while the cross-partition interactions of a whole-ecosystem run
// (rescue merges into foreign cores, K-Means migration between families,
// silhouette contrast against foreign centroids) are deliberately given up —
// the banding relaxation that keeps append-time re-clustering O(partition).
// The partition structure is content-derived, so any ingest order reproduces
// the same per-partition outputs bit for bit.
//
// The result is deterministic for a fixed seed and input order.
func ClusterItems(items []Item, cfg ClusterConfig, rng *xrand.RNG) []Cluster {
	return ClusterItemsScratch(items, cfg, rng, nil)
}

// ClusterItemsScratch is ClusterItems with pooled buffers: passing a Scratch
// reuses its allocations across calls (nil behaves like ClusterItems). The
// returned clusters are freshly allocated and safe to retain.
func ClusterItemsScratch(items []Item, cfg ClusterConfig, rng *xrand.RNG, sc *Scratch) []Cluster {
	if len(items) == 0 {
		return nil
	}
	if cfg.Threshold == 0 {
		cfg = DefaultClusterConfig()
	}
	if sc == nil {
		sc = NewScratch()
	}

	parent := growInts(&sc.parent, len(items))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Step 1+2: LSH buckets → verified merges. Band keys land in one pooled
	// (key, item) pair list sorted by key — the bucket walk below sees the
	// same buckets in the same order a map+sorted-keys pass yields, without
	// a per-call map, per-bucket slices, or a Bands allocation per item.
	nb, _ := cfg.candidateParams() // cfg.Threshold is non-zero by now
	if cap(sc.pairs) < len(items)*nb {
		sc.pairs = make([]bucketPair, 0, len(items)*nb)
	}
	pairs := sc.pairs[:0]
	for i, it := range items {
		for bi := 0; bi < nb; bi++ {
			pairs = append(pairs, bucketPair{key: bandKey(it.Hash, nb, bi), idx: i})
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].key != pairs[b].key {
			return pairs[a].key < pairs[b].key
		}
		return pairs[a].idx < pairs[b].idx
	})
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && pairs[hi].key == pairs[lo].key {
			hi++
		}
		ids := pairs[lo:hi]
		lo = hi
		if len(ids) < 2 {
			continue
		}
		// Verify each member against the bucket's first root representative
		// chain; quadratic only within (small) buckets.
		for i := 1; i < len(ids); i++ {
			for j := 0; j < i; j++ {
				if find(ids[i].idx) == find(ids[j].idx) {
					continue
				}
				// Item vectors are L2-normalised (EmbedTokens invariant),
				// so Dot is their cosine.
				if Dot(items[ids[i].idx].Vector, items[ids[j].idx].Vector) >= cfg.Threshold {
					union(ids[i].idx, ids[j].idx)
				}
			}
		}
	}

	groups := make(map[int][]int)
	for i := range items {
		root := find(i)
		groups[root] = append(groups[root], i)
	}

	// Step 2b: rescue merge. Banded LSH can miss a variant whose fingerprint
	// drifted in every band (rare, but real for token-poor packages). Compare
	// each small group's centroid against the centroids of multi-member
	// cores; merge on cosine ≥ Threshold. Cores are few, so this stays far
	// from quadratic while restoring recall.
	sc.arena.reset()
	groups = rescueMerge(items, groups, cfg.Threshold, sc)

	// Step 3: K-Means refinement seeded at group centroids. Seed vectors live
	// in the scratch arena — KMeans copies them into its centroid matrix
	// immediately, so they only need to survive until then.
	sc.arena.reset()
	if cap(sc.seeds) < len(groups) {
		sc.seeds = make([][]float64, 0, len(groups))
	}
	seeds := sc.seeds[:0]
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		seeds = append(seeds, centroidArena(&sc.arena, items, groups[root]))
	}
	if cap(sc.vecs) < len(items) {
		sc.vecs = make([][]float64, len(items))
	}
	vecs := sc.vecs[:len(items)]
	for i := range items {
		vecs[i] = items[i].Vector
	}
	assign := kmeansWith(sc, vecs, seeds, cfg.KMeansIters, cfg.Threshold)
	_ = rng // reserved for randomised restarts; kept so every partition
	// retains its own derived stream if K-Means ever grows a stochastic mode

	// Step 4: silhouette + size filtering.
	byCluster := make(map[int][]int)
	for i, c := range assign {
		if c >= 0 {
			byCluster[c] = append(byCluster[c], i)
		}
	}
	sil := simplifiedSilhouetteWith(sc, vecs, assign, len(seeds))
	var out []Cluster
	cids := make([]int, 0, len(byCluster))
	for c := range byCluster {
		cids = append(cids, c)
	}
	sort.Ints(cids)
	for _, c := range cids {
		members := byCluster[c]
		if len(members) < cfg.MinSize {
			continue
		}
		if sil[c] < cfg.MinSilhouette {
			continue
		}
		cent := centroid(items, members)
		ids := make([]string, 0, len(members))
		var intra float64
		for _, m := range members {
			ids = append(ids, items[m].ID)
			intra += Dot(items[m].Vector, cent) // both sides L2-normalised
		}
		sort.Strings(ids)
		out = append(out, Cluster{
			Members:    ids,
			Centroid:   cent,
			Silhouette: sil[c],
			IntraSim:   intra / float64(len(members)),
		})
	}
	return out
}

func rescueMerge(items []Item, groups map[int][]int, threshold float64, sc *Scratch) map[int][]int {
	type core struct {
		root     int
		centroid []float64
	}
	var cores []core
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		if len(groups[root]) >= 2 {
			cores = append(cores, core{root: root, centroid: centroidArena(&sc.arena, items, groups[root])})
		}
	}
	if len(cores) == 0 {
		return groups
	}
	for _, root := range roots {
		members := groups[root]
		if len(members) >= 2 {
			continue
		}
		c := centroidInto(sc.sums, items, members)
		sc.sums = c[:0]
		bestIdx, bestSim := -1, threshold
		for ci := range cores {
			if cores[ci].root == root {
				continue
			}
			if sim := Dot(c, cores[ci].centroid); sim >= bestSim {
				bestIdx, bestSim = ci, sim
			}
		}
		if bestIdx >= 0 {
			dst := cores[bestIdx].root
			groups[dst] = append(groups[dst], members...)
			delete(groups, root)
		}
	}
	return groups
}

// centroid returns a freshly allocated, L2-normalised mean of the members'
// vectors — the escape-safe variant used for retained Cluster centroids.
func centroid(items []Item, members []int) []float64 {
	return centroidInto(nil, items, members)
}

// centroidInto computes the centroid into dst's backing array when capacity
// suffices. Vectors may be zero-tail-trimmed (TrimZeroTail) to different
// lengths; the centroid is sized for the longest member.
func centroidInto(dst []float64, items []Item, members []int) []float64 {
	if len(members) == 0 {
		return nil
	}
	dim := 0
	for _, m := range members {
		if len(items[m].Vector) > dim {
			dim = len(items[m].Vector)
		}
	}
	if cap(dst) < dim {
		dst = make([]float64, dim)
	} else {
		dst = dst[:dim]
		clear(dst)
	}
	for _, m := range members {
		for d, x := range items[m].Vector {
			dst[d] += x
		}
	}
	normalize(dst)
	return dst
}

// centroidArena is centroidInto backed by an arena chunk, for bursts of
// centroids that must coexist (seeds, rescue cores) but not outlive the call.
func centroidArena(a *floatArena, items []Item, members []int) []float64 {
	if len(members) == 0 {
		return nil
	}
	dim := 0
	for _, m := range members {
		if len(items[m].Vector) > dim {
			dim = len(items[m].Vector)
		}
	}
	dst := a.grab(dim)
	for _, m := range members {
		for d, x := range items[m].Vector {
			dst[d] += x
		}
	}
	normalize(dst)
	return dst
}

// KMeans assigns each vector to its most-similar seed centroid, iterating
// centroid updates up to iters times. Vectors whose best similarity falls
// below threshold are left unassigned (-1) — K-Means here acts as refinement
// of an over-complete seeding rather than discovery from random starts, so k
// equals len(seeds). Seeds and vectors must be L2-normalised (the
// EmbedTokens invariant); assignment uses Dot as the cosine.
func KMeans(vecs [][]float64, seeds [][]float64, iters int, threshold float64) []int {
	return kmeansWith(nil, vecs, seeds, iters, threshold)
}

// kmeansWith is the scratch-pooled K-Means core. Centroids live in a packed
// k×stride matrix (zero-padded rows, which cannot change any Dot value), so
// the O(n·k·d) assignment scan walks memory sequentially and the per-call
// allocations collapse into reusable scratch buffers.
//
// The assignment loop — the clustering stage's dominant kernel — fans out
// across fixed-size chunks; each chunk writes disjoint assign entries, so the
// result is identical under any worker count. Centroid recomputation stays
// sequential to keep its floating-point accumulation order fixed.
func kmeansWith(sc *Scratch, vecs [][]float64, seeds [][]float64, iters int, threshold float64) []int {
	if sc == nil {
		sc = NewScratch()
	}
	k := len(seeds)
	assign := growInts(&sc.assign, len(vecs))
	if k == 0 {
		for i := range assign {
			assign[i] = -1
		}
		return assign
	}
	stride := 0
	for _, s := range seeds {
		if len(s) > stride {
			stride = len(s)
		}
	}
	// Recomputed centroids can outgrow every seed when vectors are
	// zero-tail-trimmed to different lengths; the packing stride must cover
	// the longest vector a centroid could absorb.
	for _, v := range vecs {
		if len(v) > stride {
			stride = len(v)
		}
	}
	cents := growFloats(&sc.cents, k*stride)
	for i, s := range seeds {
		copy(cents[i*stride:], s)
	}
	alive := growBools(&sc.alive, k)
	for c := range alive {
		alive[c] = true
	}
	counts := growInts(&sc.counts, k)
	if cap(sc.liveIdx) < k {
		sc.liveIdx = make([]int, 0, k)
	}
	if cap(sc.flat) < k*stride {
		sc.flat = make([]float64, 0, k*stride)
	}
	for iter := 0; iter < max(iters, 1); iter++ {
		liveIdx := sc.liveIdx[:0]
		flat := sc.flat[:0]
		for c := 0; c < k; c++ {
			if !alive[c] {
				continue
			}
			liveIdx = append(liveIdx, c)
			flat = append(flat, cents[c*stride:(c+1)*stride]...)
		}
		first := iter == 0
		var changed atomic.Bool
		parallel.ForEachChunk(len(vecs), assignChunk, func(_, lo, hi int) {
			chunkChanged := false
			for i := lo; i < hi; i++ {
				v := vecs[i]
				best, bestSim := -1, threshold
				for j, c := range liveIdx {
					if sim := Dot(v, flat[j*stride:j*stride+stride]); sim >= bestSim {
						best, bestSim = c, sim
					}
				}
				if !first && assign[i] != best {
					chunkChanged = true
				}
				assign[i] = best
			}
			if chunkChanged {
				changed.Store(true)
			}
		})
		if !first && !changed.Load() {
			break
		}
		// Recompute centroids into the spare matrix, then swap it in.
		sums := growFloats(&sc.sums, k*stride)
		for c := range counts {
			counts[c] = 0
		}
		for i, c := range assign {
			if c < 0 {
				continue
			}
			row := sums[c*stride : (c+1)*stride]
			for d, x := range vecs[i] {
				row[d] += x
			}
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				alive[c] = false // dead centroid
				continue
			}
			normalize(sums[c*stride : (c+1)*stride])
		}
		cents = sums
		sc.cents, sc.sums = sc.sums, sc.cents
	}
	return assign
}

// SimplifiedSilhouette computes the centroid-based silhouette per cluster:
// a(i) = distance to own centroid, b(i) = distance to nearest other centroid,
// s(i) = (b−a)/max(a,b), averaged per cluster. (The exact silhouette is
// O(n²); the simplified variant is the standard corpus-scale approximation
// and preserves the paper's "drop clusters with silhouette < 0.3" filter.)
// Distance is cosine distance 1−cos. Unassigned points (-1) are skipped.
// Singleton-cluster silhouette is defined as 1 (tight by construction).
func SimplifiedSilhouette(vecs [][]float64, assign []int, k int) []float64 {
	return simplifiedSilhouetteWith(nil, vecs, assign, k)
}

// simplifiedSilhouetteWith is the scratch-pooled core. Centroids are packed
// into a k×stride matrix as in kmeansWith, so the b(i) scan over all other
// centroids is a sequential walk. The returned slice is scratch-backed.
func simplifiedSilhouetteWith(sc *Scratch, vecs [][]float64, assign []int, k int) []float64 {
	if k == 0 {
		return nil
	}
	if sc == nil {
		sc = NewScratch()
	}
	stride := 0
	for i, c := range assign {
		if c >= 0 && c < k && len(vecs[i]) > stride {
			stride = len(vecs[i])
		}
	}
	cents := growFloats(&sc.cents, k*stride)
	counts := growInts(&sc.counts, k)
	for i, c := range assign {
		if c < 0 || c >= k {
			continue
		}
		row := cents[c*stride : (c+1)*stride]
		for d, x := range vecs[i] {
			row[d] += x
		}
		counts[c]++
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			normalize(cents[c*stride : (c+1)*stride])
		}
	}
	// Pack live centroids contiguously so the b(i) scan is sequential.
	if cap(sc.liveIdx) < k {
		sc.liveIdx = make([]int, 0, k)
	}
	if cap(sc.flat) < k*stride {
		sc.flat = make([]float64, 0, k*stride)
	}
	liveIdx := sc.liveIdx[:0]
	flat := sc.flat[:0]
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		liveIdx = append(liveIdx, c)
		flat = append(flat, cents[c*stride:(c+1)*stride]...)
	}
	live := len(liveIdx)
	// The per-point a/b scan is O(n·k·d) — the other dominant kernel next
	// to K-Means assignment. Points are scored in parallel over fixed
	// chunks; per-chunk partial sums land in disjoint rows of one pooled
	// matrix and are merged in chunk-index order so the floating-point
	// totals match a sequential run bit for bit.
	nchunks := parallel.NumChunks(len(assign), assignChunk)
	partial := growFloats(&sc.partial, nchunks*k)
	parallel.ForEachChunk(len(assign), assignChunk, func(ci, lo, hi int) {
		sums := partial[ci*k : (ci+1)*k]
		for i := lo; i < hi; i++ {
			c := assign[i]
			if c < 0 || c >= k || counts[c] == 0 {
				continue
			}
			// Centroids are L2-normalised above; vecs hold the EmbedTokens
			// invariant, so Dot is their cosine.
			a := 1 - Dot(vecs[i], cents[c*stride:(c+1)*stride])
			b := 2.0
			if live < 2 {
				b = 1 // no other cluster: treat as max cosine distance
			} else {
				for j, o := range liveIdx {
					if o == c {
						continue
					}
					if d := 1 - Dot(vecs[i], flat[j*stride:j*stride+stride]); d < b {
						b = d
					}
				}
			}
			den := a
			if b > den {
				den = b
			}
			if den == 0 {
				sums[c] += 1
				continue
			}
			sums[c] += (b - a) / den
		}
	})
	sums := growFloats(&sc.silSums, k)
	for ci := 0; ci < nchunks; ci++ {
		part := partial[ci*k : (ci+1)*k]
		for c, s := range part {
			sums[c] += s
		}
	}
	out := growFloats(&sc.sil, k)
	for c := range out {
		if counts[c] > 0 {
			out[c] = sums[c] / float64(counts[c])
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
