package textsim

import (
	"sort"
	"sync/atomic"

	"malgraph/internal/parallel"
	"malgraph/internal/xrand"
)

// assignChunk is the fixed work-unit size for parallel assignment and
// silhouette loops. Chunk boundaries depend only on the input length, so
// per-chunk partial sums merged in chunk order are identical under any
// GOMAXPROCS — see internal/parallel.
const assignChunk = 256

// ClusterConfig parameterises the similarity clustering of §III-B step 4.
type ClusterConfig struct {
	// Threshold is the minimum cosine similarity for two packages to join
	// the same group (paper: 0.7).
	Threshold float64
	// MinSilhouette drops clusters whose silhouette score falls below this
	// value (paper: 0.3).
	MinSilhouette float64
	// MinSize drops clusters smaller than this (paper: subgraphs need ≥ 2).
	MinSize int
	// KMeansIters bounds the refinement iterations.
	KMeansIters int
	// LSHBands is the number of SimHash bands used for candidate pairing.
	LSHBands int
}

// DefaultClusterConfig returns the paper's parameters.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{Threshold: 0.7, MinSilhouette: 0.3, MinSize: 2, KMeansIters: 8, LSHBands: 8}
}

// Item is one package entering the clustering stage.
type Item struct {
	ID     string
	Vector []float64
	Hash   uint64 // SimHash fingerprint
}

// Cluster is one similar-code group.
type Cluster struct {
	Members    []string // item IDs, sorted
	Centroid   []float64
	Silhouette float64
	IntraSim   float64 // mean pairwise-to-centroid cosine (paper reports 99.9%)
}

// ClusterItems groups items whose code bases are similar. The pipeline is:
//
//  1. Banded-LSH candidate generation over SimHash fingerprints.
//  2. Union–find merge of candidate pairs whose cosine ≥ Threshold.
//  3. K-Means refinement seeded from the merged groups (k = #groups).
//  4. Simplified-silhouette filtering (< MinSilhouette dropped) and MinSize
//     filtering.
//
// The result is deterministic for a fixed seed and input order.
func ClusterItems(items []Item, cfg ClusterConfig, rng *xrand.RNG) []Cluster {
	if len(items) == 0 {
		return nil
	}
	if cfg.Threshold == 0 {
		cfg = DefaultClusterConfig()
	}

	parent := make([]int, len(items))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Step 1+2: LSH buckets → verified merges.
	buckets := make(map[uint64][]int)
	for i, it := range items {
		for bi, band := range Bands(it.Hash, cfg.LSHBands) {
			key := uint64(bi)<<60 | band
			buckets[key] = append(buckets[key], i)
		}
	}
	keys := make([]uint64, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		ids := buckets[k]
		if len(ids) < 2 {
			continue
		}
		// Verify each member against the bucket's first root representative
		// chain; quadratic only within (small) buckets.
		for i := 1; i < len(ids); i++ {
			for j := 0; j < i; j++ {
				if find(ids[i]) == find(ids[j]) {
					continue
				}
				// Item vectors are L2-normalised (EmbedTokens invariant),
				// so Dot is their cosine.
				if Dot(items[ids[i]].Vector, items[ids[j]].Vector) >= cfg.Threshold {
					union(ids[i], ids[j])
				}
			}
		}
	}

	groups := make(map[int][]int)
	for i := range items {
		root := find(i)
		groups[root] = append(groups[root], i)
	}

	// Step 2b: rescue merge. Banded LSH can miss a variant whose fingerprint
	// drifted in every band (rare, but real for token-poor packages). Compare
	// each small group's centroid against the centroids of multi-member
	// cores; merge on cosine ≥ Threshold. Cores are few, so this stays far
	// from quadratic while restoring recall.
	groups = rescueMerge(items, groups, cfg.Threshold)

	// Step 3: K-Means refinement seeded at group centroids.
	seeds := make([][]float64, 0, len(groups))
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		seeds = append(seeds, centroid(items, groups[root]))
	}
	vecs := vectors(items)
	assign := KMeans(vecs, seeds, cfg.KMeansIters, cfg.Threshold)
	_ = rng // reserved for randomised restarts; kept so every ecosystem
	// retains its own derived stream if K-Means ever grows a stochastic mode

	// Step 4: silhouette + size filtering.
	byCluster := make(map[int][]int)
	for i, c := range assign {
		if c >= 0 {
			byCluster[c] = append(byCluster[c], i)
		}
	}
	sil := SimplifiedSilhouette(vecs, assign, len(seeds))
	var out []Cluster
	cids := make([]int, 0, len(byCluster))
	for c := range byCluster {
		cids = append(cids, c)
	}
	sort.Ints(cids)
	for _, c := range cids {
		members := byCluster[c]
		if len(members) < cfg.MinSize {
			continue
		}
		if sil[c] < cfg.MinSilhouette {
			continue
		}
		cent := centroid(items, members)
		ids := make([]string, 0, len(members))
		var intra float64
		for _, m := range members {
			ids = append(ids, items[m].ID)
			intra += Dot(items[m].Vector, cent) // both sides L2-normalised
		}
		sort.Strings(ids)
		out = append(out, Cluster{
			Members:    ids,
			Centroid:   cent,
			Silhouette: sil[c],
			IntraSim:   intra / float64(len(members)),
		})
	}
	return out
}

func rescueMerge(items []Item, groups map[int][]int, threshold float64) map[int][]int {
	type core struct {
		root     int
		centroid []float64
	}
	var cores []core
	roots := make([]int, 0, len(groups))
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Ints(roots)
	for _, root := range roots {
		if len(groups[root]) >= 2 {
			cores = append(cores, core{root: root, centroid: centroid(items, groups[root])})
		}
	}
	if len(cores) == 0 {
		return groups
	}
	for _, root := range roots {
		members := groups[root]
		if len(members) >= 2 {
			continue
		}
		c := centroid(items, members)
		bestIdx, bestSim := -1, threshold
		for ci := range cores {
			if cores[ci].root == root {
				continue
			}
			if sim := Dot(c, cores[ci].centroid); sim >= bestSim {
				bestIdx, bestSim = ci, sim
			}
		}
		if bestIdx >= 0 {
			dst := cores[bestIdx].root
			groups[dst] = append(groups[dst], members...)
			delete(groups, root)
		}
	}
	return groups
}

func vectors(items []Item) [][]float64 {
	v := make([][]float64, len(items))
	for i := range items {
		v[i] = items[i].Vector
	}
	return v
}

func centroid(items []Item, members []int) []float64 {
	if len(members) == 0 {
		return nil
	}
	// Vectors may be zero-tail-trimmed (TrimZeroTail) to different lengths;
	// size the centroid for the longest member.
	dim := 0
	for _, m := range members {
		if len(items[m].Vector) > dim {
			dim = len(items[m].Vector)
		}
	}
	c := make([]float64, dim)
	for _, m := range members {
		for d, x := range items[m].Vector {
			c[d] += x
		}
	}
	normalize(c)
	return c
}

// KMeans assigns each vector to its most-similar seed centroid, iterating
// centroid updates up to iters times. Vectors whose best similarity falls
// below threshold are left unassigned (-1) — K-Means here acts as refinement
// of an over-complete seeding rather than discovery from random starts, so k
// equals len(seeds). Seeds and vectors must be L2-normalised (the
// EmbedTokens invariant); assignment uses Dot as the cosine.
//
// The assignment loop — the clustering stage's dominant O(n·k·d) kernel —
// fans out across fixed-size chunks; each chunk writes disjoint assign
// entries, so the result is identical under any worker count. Centroid
// recomputation stays sequential to keep its floating-point accumulation
// order fixed.
func KMeans(vecs [][]float64, seeds [][]float64, iters int, threshold float64) []int {
	k := len(seeds)
	assign := make([]int, len(vecs))
	if k == 0 {
		for i := range assign {
			assign[i] = -1
		}
		return assign
	}
	cents := make([][]float64, k)
	stride := 0
	for i, s := range seeds {
		cents[i] = append([]float64(nil), s...)
		if len(s) > stride {
			stride = len(s)
		}
	}
	// Recomputed centroids can outgrow every seed when vectors are
	// zero-tail-trimmed to different lengths; the packing stride must cover
	// the longest vector a centroid could absorb.
	for _, v := range vecs {
		if len(v) > stride {
			stride = len(v)
		}
	}
	// Live centroids are repacked into one contiguous buffer per iteration
	// (zero-padded to a fixed stride, which cannot change any Dot value) so
	// the O(n·k·d) assignment scan walks memory sequentially instead of
	// chasing k separately-allocated slices.
	flat := make([]float64, 0, k*stride)
	liveIdx := make([]int, 0, k)
	for iter := 0; iter < max(iters, 1); iter++ {
		liveIdx = liveIdx[:0]
		flat = flat[:0]
		for c := 0; c < k; c++ {
			if cents[c] == nil {
				continue
			}
			liveIdx = append(liveIdx, c)
			flat = append(flat, cents[c]...)
			for p := len(cents[c]); p < stride; p++ {
				flat = append(flat, 0)
			}
		}
		first := iter == 0
		var changed atomic.Bool
		parallel.ForEachChunk(len(vecs), assignChunk, func(_, lo, hi int) {
			chunkChanged := false
			for i := lo; i < hi; i++ {
				v := vecs[i]
				best, bestSim := -1, threshold
				for j, c := range liveIdx {
					if sim := Dot(v, flat[j*stride:j*stride+stride]); sim >= bestSim {
						best, bestSim = c, sim
					}
				}
				if !first && assign[i] != best {
					chunkChanged = true
				}
				assign[i] = best
			}
			if chunkChanged {
				changed.Store(true)
			}
		})
		if !first && !changed.Load() {
			break
		}
		// Recompute centroids.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for i, c := range assign {
			if c < 0 {
				continue
			}
			sums[c] = growTo(sums[c], len(vecs[i]))
			for d, x := range vecs[i] {
				sums[c][d] += x
			}
			counts[c]++
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				cents[c] = nil // dead centroid
				continue
			}
			normalize(sums[c])
			cents[c] = sums[c]
		}
	}
	return assign
}

// SimplifiedSilhouette computes the centroid-based silhouette per cluster:
// a(i) = distance to own centroid, b(i) = distance to nearest other centroid,
// s(i) = (b−a)/max(a,b), averaged per cluster. (The exact silhouette is
// O(n²); the simplified variant is the standard corpus-scale approximation
// and preserves the paper's "drop clusters with silhouette < 0.3" filter.)
// Distance is cosine distance 1−cos. Unassigned points (-1) are skipped.
// Singleton-cluster silhouette is defined as 1 (tight by construction).
func SimplifiedSilhouette(vecs [][]float64, assign []int, k int) []float64 {
	if k == 0 {
		return nil
	}
	cents := make([][]float64, k)
	counts := make([]int, k)
	for i, c := range assign {
		if c < 0 || c >= k {
			continue
		}
		cents[c] = growTo(cents[c], len(vecs[i]))
		for d, x := range vecs[i] {
			cents[c][d] += x
		}
		counts[c]++
	}
	for c := range cents {
		if counts[c] > 0 {
			normalize(cents[c])
		}
	}
	// Pack live centroids contiguously, as in KMeans, so the b(i) scan over
	// all other centroids is a sequential walk.
	stride := 0
	for c := range cents {
		if len(cents[c]) > stride {
			stride = len(cents[c])
		}
	}
	liveIdx := make([]int, 0, k)
	flat := make([]float64, 0, k*stride)
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		liveIdx = append(liveIdx, c)
		flat = append(flat, cents[c]...)
		for p := len(cents[c]); p < stride; p++ {
			flat = append(flat, 0)
		}
	}
	live := len(liveIdx)
	// The per-point a/b scan is O(n·k·d) — the other dominant kernel next
	// to K-Means assignment. Points are scored in parallel over fixed
	// chunks; per-chunk partial sums are merged in chunk-index order so the
	// floating-point totals match a sequential run bit for bit.
	nchunks := parallel.NumChunks(len(assign), assignChunk)
	partial := make([][]float64, nchunks)
	parallel.ForEachChunk(len(assign), assignChunk, func(ci, lo, hi int) {
		sums := make([]float64, k)
		for i := lo; i < hi; i++ {
			c := assign[i]
			if c < 0 || c >= k || counts[c] == 0 {
				continue
			}
			// Centroids are L2-normalised above; vecs hold the EmbedTokens
			// invariant, so Dot is their cosine.
			a := 1 - Dot(vecs[i], cents[c])
			b := 2.0
			if live < 2 {
				b = 1 // no other cluster: treat as max cosine distance
			} else {
				for j, o := range liveIdx {
					if o == c {
						continue
					}
					if d := 1 - Dot(vecs[i], flat[j*stride:j*stride+stride]); d < b {
						b = d
					}
				}
			}
			den := a
			if b > den {
				den = b
			}
			if den == 0 {
				sums[c] += 1
				continue
			}
			sums[c] += (b - a) / den
		}
		partial[ci] = sums
	})
	sums := make([]float64, k)
	for _, part := range partial {
		for c, s := range part {
			sums[c] += s
		}
	}
	out := make([]float64, k)
	for c := range out {
		if counts[c] > 0 {
			out[c] = sums[c] / float64(counts[c])
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// growTo extends an accumulator with zero dimensions so a longer vector can
// fold in; existing partial sums are preserved exactly.
func growTo(acc []float64, n int) []float64 {
	if len(acc) >= n {
		return acc
	}
	grown := make([]float64, n)
	copy(grown, acc)
	return grown
}
