package textsim

import "unicode/utf8"

// This file holds the allocation-free kernel of the §III-B pipeline: an
// inline FNV-1a (hash/fnv heap-allocates a hasher per call), the shared
// normalize→filter→hash token pass that EmbedHashed and SimHashHashed both
// consume, and the Dot fast path for L2-normalised vectors.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a64 hashes s with FNV-1a without allocating.
func fnv1a64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// TokenHash is one token after the shared normalize→filter→hash pass. Skip
// marks tokens Informative rejects; their Hash is meaningless.
type TokenHash struct {
	Hash uint64
	Skip bool
}

// stopwordByHash indexes codeStopwords by FNV-1a hash; the stored word
// confirms the match so an (astronomically unlikely) hash collision cannot
// silently drop a real identifier.
var stopwordByHash = func() map[uint64]string {
	m := make(map[uint64]string, len(codeStopwords))
	for w := range codeStopwords {
		m[fnv1a64(w)] = w
	}
	return m
}()

// HashTokens normalizes, filters and hashes a token stream in one pass,
// returning one entry per input token so snippet boundaries computed over
// the raw tokens apply unchanged to the hashed stream. Callers tokenize an
// artifact once and feed the result to both EmbedHashed and SimHashHashed,
// instead of lower-casing and hashing every token twice. dst is reused when
// its capacity suffices.
func HashTokens(tokens []string, dst []TokenHash) []TokenHash {
	if cap(dst) < len(tokens) {
		dst = make([]TokenHash, len(tokens))
	}
	dst = dst[:len(tokens)]
	for i, t := range tokens {
		dst[i] = hashToken(t)
	}
	return dst
}

// hashToken lower-cases, filters and hashes one token without allocating.
// The ASCII fast path folds case inline; non-ASCII tokens take the exact
// NormalizeToken+Informative route.
func hashToken(t string) TokenHash {
	if len(t) < 3 {
		return TokenHash{Skip: true}
	}
	h := uint64(fnvOffset64)
	digits := 0
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= utf8.RuneSelf {
			return hashTokenSlow(t)
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c >= '0' && c <= '9' {
			digits++
		}
		h ^= uint64(c)
		h *= fnvPrime64
	}
	if digits == len(t) {
		return TokenHash{Skip: true} // pure numbers are noise
	}
	if w, ok := stopwordByHash[h]; ok && equalFoldASCII(t, w) {
		return TokenHash{Skip: true}
	}
	return TokenHash{Hash: h}
}

func hashTokenSlow(t string) TokenHash {
	norm := NormalizeToken(t)
	if !Informative(norm) {
		return TokenHash{Skip: true}
	}
	return TokenHash{Hash: fnv1a64(norm)}
}

// equalFoldASCII reports whether lower-casing ASCII t yields w (w is already
// lower-case).
func equalFoldASCII(t, w string) bool {
	if len(t) != len(w) {
		return false
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != w[i] {
			return false
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors. For the
// L2-normalised vectors Embedder.EmbedTokens produces (and the normalised
// centroids derived from them) this equals Cosine at a third of the memory
// traffic, which is why every clustering-stage comparison uses it. The
// four-lane unrolling fixes the summation order, so results are bit-stable
// across runs and worker counts.
func Dot(a, b []float64) float64 {
	n := min(len(a), len(b))
	a, b = a[:n], b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}
