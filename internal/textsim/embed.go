package textsim

import (
	"hash/fnv"
	"math"
)

// EmbedConfig parameterises package embedding. The defaults mirror §III-B:
// 512-token snippets; MaxSnippets bounds the concatenated vector so every
// package embeds to the same length (shorter packages are zero-padded, a
// fixed-shape analogue of the paper's concatenation).
type EmbedConfig struct {
	SnippetTokens int // tokens per snippet (paper: 512)
	SnippetDim    int // hashed dimensions per snippet vector
	MaxSnippets   int // snippets concatenated per package
}

// DefaultEmbedConfig returns the configuration used across the repository.
func DefaultEmbedConfig() EmbedConfig {
	return EmbedConfig{SnippetTokens: 512, SnippetDim: 64, MaxSnippets: 4}
}

// Dim returns the package-vector dimensionality.
func (c EmbedConfig) Dim() int { return c.SnippetDim * c.MaxSnippets }

// Embedder converts source code into fixed-length vectors.
type Embedder struct {
	cfg EmbedConfig
}

// NewEmbedder returns an embedder; zero-valued config fields fall back to
// defaults.
func NewEmbedder(cfg EmbedConfig) *Embedder {
	def := DefaultEmbedConfig()
	if cfg.SnippetTokens <= 0 {
		cfg.SnippetTokens = def.SnippetTokens
	}
	if cfg.SnippetDim <= 0 {
		cfg.SnippetDim = def.SnippetDim
	}
	if cfg.MaxSnippets <= 0 {
		cfg.MaxSnippets = def.MaxSnippets
	}
	return &Embedder{cfg: cfg}
}

// Config returns the effective configuration.
func (e *Embedder) Config() EmbedConfig { return e.cfg }

// EmbedSource embeds merged package source into an L2-normalised vector of
// length Config().Dim().
func (e *Embedder) EmbedSource(src string) []float64 {
	return e.EmbedTokens(Tokenize(src))
}

// EmbedTokens embeds a pre-tokenised stream. Only informative tokens
// contribute (punctuation, one/two-character fragments and language keywords
// carry no code-base identity and would otherwise dominate the vectors), and
// term frequencies are sublinear (sqrt) so a token repeated hundreds of times
// cannot swamp a snippet — both standard code-retrieval weightings that stand
// in for the contextual weighting CodeBERT learns.
func (e *Embedder) EmbedTokens(tokens []string) []float64 {
	vec := make([]float64, e.cfg.Dim())
	snippets := Snippets(tokens, e.cfg.SnippetTokens)
	for si, snip := range snippets {
		if si >= e.cfg.MaxSnippets {
			// Overflow snippets fold into the last slot so very large
			// packages still contribute all their content.
			si = e.cfg.MaxSnippets - 1
		}
		base := si * e.cfg.SnippetDim
		counts := make(map[string]int, len(snip))
		for _, tok := range snip {
			norm := NormalizeToken(tok)
			if !Informative(norm) {
				continue
			}
			counts[norm]++
		}
		for tok, n := range counts {
			h := fnv.New64a()
			_, _ = h.Write([]byte(tok))
			hv := h.Sum64()
			idx := int(hv % uint64(e.cfg.SnippetDim))
			sign := 1.0
			if hv&(1<<63) != 0 {
				sign = -1.0 // signed hashing reduces collision bias
			}
			vec[base+idx] += sign * math.Sqrt(float64(n))
		}
	}
	normalize(vec)
	return vec
}

// codeStopwords are language keywords and ubiquitous identifiers shared by
// virtually every package; they carry no code-base identity.
var codeStopwords = map[string]bool{
	"def": true, "return": true, "import": true, "from": true, "const": true,
	"let": true, "var": true, "function": true, "require": true, "class": true,
	"if": true, "else": true, "elif": true, "for": true, "while": true,
	"in": true, "of": true, "new": true, "this": true, "self": true,
	"end": true, "do": true, "not": true, "and": true, "or": true,
	"true": true, "false": true, "none": true, "null": true, "nil": true,
	"print": true, "pass": true, "try": true, "except": true, "catch": true,
	"raise": true, "throw": true, "async": true, "await": true, "module": true,
	"exports": true, "lambda": true, "yield": true, "with": true, "as": true,
	"loop": true, "puts": true, "https": true, "http": true, "com": true,
	"org": true, "www": true,
}

// Informative reports whether a normalised token should contribute to
// embeddings and fingerprints.
func Informative(norm string) bool {
	if len(norm) < 3 {
		return false
	}
	if codeStopwords[norm] {
		return false
	}
	digits := 0
	for _, r := range norm {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	// Pure numbers (version fragments, line counts) are noise; mixed
	// alphanumerics (identifiers, IPs, base64 chunks) are signal.
	return digits < len(norm)
}

func normalize(v []float64) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if ss == 0 {
		return
	}
	inv := 1 / math.Sqrt(ss)
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of two equal-length vectors. For the
// L2-normalised vectors produced by Embedder this is the plain dot product;
// unnormalised inputs are handled by dividing through the norms.
func Cosine(a, b []float64) float64 {
	n := min(len(a), len(b))
	var dot, na, nb float64
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
	}
	for _, x := range a {
		na += x * x
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// SimHash computes a 64-bit locality-sensitive fingerprint of the token
// stream. Near-identical code bases produce fingerprints within a few bits
// of each other, which the banded LSH in cluster.go exploits.
func SimHash(tokens []string) uint64 {
	var counts [64]int
	for _, tok := range tokens {
		norm := NormalizeToken(tok)
		if !Informative(norm) {
			continue
		}
		h := fnv.New64a()
		_, _ = h.Write([]byte(norm))
		hv := h.Sum64()
		for b := 0; b < 64; b++ {
			if hv&(1<<uint(b)) != 0 {
				counts[b]++
			} else {
				counts[b]--
			}
		}
	}
	var out uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return out
}

// Bands splits a SimHash into nBands band values for LSH bucketing. Two
// fingerprints that agree on any band become cluster candidates.
func Bands(fingerprint uint64, nBands int) []uint64 {
	if nBands <= 0 {
		nBands = 4
	}
	width := 64 / nBands
	out := make([]uint64, nBands)
	for i := 0; i < nBands; i++ {
		mask := (uint64(1)<<uint(width) - 1)
		out[i] = (fingerprint >> uint(i*width)) & mask
	}
	return out
}
