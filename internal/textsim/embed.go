package textsim

import (
	"math"
	"slices"
)

// EmbedConfig parameterises package embedding. The defaults mirror §III-B:
// 512-token snippets; MaxSnippets bounds the concatenated vector so every
// package embeds to the same length (shorter packages are zero-padded, a
// fixed-shape analogue of the paper's concatenation).
type EmbedConfig struct {
	SnippetTokens int // tokens per snippet (paper: 512)
	SnippetDim    int // hashed dimensions per snippet vector
	MaxSnippets   int // snippets concatenated per package
}

// DefaultEmbedConfig returns the configuration used across the repository.
func DefaultEmbedConfig() EmbedConfig {
	return EmbedConfig{SnippetTokens: 512, SnippetDim: 64, MaxSnippets: 4}
}

// Dim returns the package-vector dimensionality.
func (c EmbedConfig) Dim() int { return c.SnippetDim * c.MaxSnippets }

// Embedder converts source code into fixed-length vectors.
type Embedder struct {
	cfg EmbedConfig
}

// NewEmbedder returns an embedder; zero-valued config fields fall back to
// defaults.
func NewEmbedder(cfg EmbedConfig) *Embedder {
	def := DefaultEmbedConfig()
	if cfg.SnippetTokens <= 0 {
		cfg.SnippetTokens = def.SnippetTokens
	}
	if cfg.SnippetDim <= 0 {
		cfg.SnippetDim = def.SnippetDim
	}
	if cfg.MaxSnippets <= 0 {
		cfg.MaxSnippets = def.MaxSnippets
	}
	return &Embedder{cfg: cfg}
}

// Config returns the effective configuration.
func (e *Embedder) Config() EmbedConfig { return e.cfg }

// EmbedSource embeds merged package source into an L2-normalised vector of
// length Config().Dim().
func (e *Embedder) EmbedSource(src string) []float64 {
	return e.EmbedTokens(Tokenize(src))
}

// TrimZeroTail drops a vector's trailing zero dimensions. Packages shorter
// than SnippetTokens×MaxSnippets leave their tail snippet slots at exactly
// zero (the fixed-shape padding), so dot products against the trimmed vector
// are mathematically unchanged while the O(n·k·d) clustering kernels scan
// only the occupied prefix — on real corpora most artifacts fill one snippet
// slot, a ~4× kernel saving. Dot, centroid accumulation and the silhouette
// scans all accept mixed-length vectors.
func TrimZeroTail(v []float64) []float64 {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	return v[:n]
}

// EmbedTokens embeds a pre-tokenised stream. Only informative tokens
// contribute (punctuation, one/two-character fragments and language keywords
// carry no code-base identity and would otherwise dominate the vectors), and
// term frequencies are sublinear (sqrt) so a token repeated hundreds of times
// cannot swamp a snippet — both standard code-retrieval weightings that stand
// in for the contextual weighting CodeBERT learns.
//
// Invariant: the returned vector is L2-normalised (or all-zero when no token
// is informative), so downstream similarity code may use Dot in place of
// Cosine without renormalising.
func (e *Embedder) EmbedTokens(tokens []string) []float64 {
	return e.EmbedHashed(HashTokens(tokens, nil))
}

// EmbedHashed embeds a stream already passed through HashTokens, the
// allocation-lean path for callers that share one hashed stream between
// embedding and SimHash fingerprinting. The output satisfies the same
// L2-normalisation invariant as EmbedTokens.
func (e *Embedder) EmbedHashed(hashed []TokenHash) []float64 {
	vec := make([]float64, e.cfg.Dim())
	scratch := make([]uint64, 0, min(len(hashed), e.cfg.SnippetTokens))
	for lo := 0; lo < len(hashed); lo += e.cfg.SnippetTokens {
		si := lo / e.cfg.SnippetTokens
		if si >= e.cfg.MaxSnippets {
			// Overflow snippets fold into the last slot so very large
			// packages still contribute all their content.
			si = e.cfg.MaxSnippets - 1
		}
		base := si * e.cfg.SnippetDim
		hi := min(lo+e.cfg.SnippetTokens, len(hashed))
		scratch = scratch[:0]
		for _, th := range hashed[lo:hi] {
			if !th.Skip {
				scratch = append(scratch, th.Hash)
			}
		}
		// Sorting fixes the floating-point accumulation order (map-based
		// counting would add colliding dimensions in random order, making
		// embeddings differ in the last bit between runs) and counts each
		// distinct token as one run.
		slices.Sort(scratch)
		for s := 0; s < len(scratch); {
			hv := scratch[s]
			n := s + 1
			for n < len(scratch) && scratch[n] == hv {
				n++
			}
			idx := int(hv % uint64(e.cfg.SnippetDim))
			sign := 1.0
			if hv&(1<<63) != 0 {
				sign = -1.0 // signed hashing reduces collision bias
			}
			vec[base+idx] += sign * math.Sqrt(float64(n-s))
			s = n
		}
	}
	normalize(vec)
	return vec
}

// codeStopwords are language keywords and ubiquitous identifiers shared by
// virtually every package; they carry no code-base identity.
var codeStopwords = map[string]bool{
	"def": true, "return": true, "import": true, "from": true, "const": true,
	"let": true, "var": true, "function": true, "require": true, "class": true,
	"if": true, "else": true, "elif": true, "for": true, "while": true,
	"in": true, "of": true, "new": true, "this": true, "self": true,
	"end": true, "do": true, "not": true, "and": true, "or": true,
	"true": true, "false": true, "none": true, "null": true, "nil": true,
	"print": true, "pass": true, "try": true, "except": true, "catch": true,
	"raise": true, "throw": true, "async": true, "await": true, "module": true,
	"exports": true, "lambda": true, "yield": true, "with": true, "as": true,
	"loop": true, "puts": true, "https": true, "http": true, "com": true,
	"org": true, "www": true,
}

// Informative reports whether a normalised token should contribute to
// embeddings and fingerprints.
func Informative(norm string) bool {
	if len(norm) < 3 {
		return false
	}
	if codeStopwords[norm] {
		return false
	}
	digits := 0
	for _, r := range norm {
		if r >= '0' && r <= '9' {
			digits++
		}
	}
	// Pure numbers (version fragments, line counts) are noise; mixed
	// alphanumerics (identifiers, IPs, base64 chunks) are signal.
	return digits < len(norm)
}

func normalize(v []float64) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	if ss == 0 {
		return
	}
	inv := 1 / math.Sqrt(ss)
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of two equal-length vectors,
// dividing through both norms. Hot paths that hold the EmbedTokens
// L2-normalisation invariant (clustering, silhouette, K-Means) call Dot
// directly and skip the two norm passes; Cosine remains the safe entry
// point for vectors of unknown provenance.
func Cosine(a, b []float64) float64 {
	dot := Dot(a, b)
	var na, nb float64
	for _, x := range a {
		na += x * x
	}
	for _, x := range b {
		nb += x * x
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// SimHash computes a 64-bit locality-sensitive fingerprint of the token
// stream. Near-identical code bases produce fingerprints within a few bits
// of each other, which the banded LSH in cluster.go exploits.
func SimHash(tokens []string) uint64 {
	return SimHashHashed(HashTokens(tokens, nil))
}

// SimHashHashed fingerprints a stream already passed through HashTokens,
// sharing the normalize+hash pass with EmbedHashed. The per-bit update is
// branchless (2·bit−1 ∈ {−1,+1}): hash bits are uniform, so a conditional
// here mispredicts half the time on the hottest loop in fingerprinting.
func SimHashHashed(hashed []TokenHash) uint64 {
	var counts [64]int
	for _, th := range hashed {
		if th.Skip {
			continue
		}
		hv := th.Hash
		for b := 0; b < 64; b++ {
			counts[b] += int((hv>>uint(b))&1)*2 - 1
		}
	}
	var out uint64
	for b := 0; b < 64; b++ {
		if counts[b] > 0 {
			out |= 1 << uint(b)
		}
	}
	return out
}

// Bands splits a SimHash into nBands band values for LSH bucketing. Two
// fingerprints that agree on any band become cluster candidates.
func Bands(fingerprint uint64, nBands int) []uint64 {
	if nBands <= 0 {
		nBands = 4
	}
	width := 64 / nBands
	out := make([]uint64, nBands)
	for i := 0; i < nBands; i++ {
		mask := (uint64(1)<<uint(width) - 1)
		out[i] = (fingerprint >> uint(i*width)) & mask
	}
	return out
}
