package textsim

import "sort"

// LSHIndex maintains the verified similarity-partition structure of a
// growing item corpus. Two items belong to the same partition when they are
// connected, transitively, by *verified candidate pairs*: fingerprints
// colliding in at least one SimHash band (the LSH candidate relation of
// ClusterItems step 1) whose vectors also clear the cosine threshold (the
// verification of step 2). Partitions are therefore the connected components
// of the verified-similarity graph — real code families with bounded size.
//
// Verification is what keeps partitions meaningful at scale: with b bands of
// 64/b bits, raw band collisions percolate once an ecosystem outgrows the
// 2^(64/b) keyspace per band (a few thousand items at the default b = 8),
// fusing the whole ecosystem into one partition and re-introducing the
// O(ecosystem) append cost the partitioning exists to avoid. The verified
// relation is pairwise content — "shares a band AND cosine ≥ threshold" —
// so partitions stay family-sized however large the corpus grows.
//
// Identity is content-derived throughout: a partition's canonical key is the
// lexicographically smallest member ID, and membership depends only on the
// (id, fingerprint, vector) set — never on insertion order. Adding the same
// items in any order yields the same partitions with the same keys, which is
// what lets batch-partitioned ingest reproduce a one-shot build exactly.
//
// An LSHIndex is not safe for concurrent use; the engine serializes access
// under its ingest lock and hands immutable member snapshots to workers.
type LSHIndex struct {
	bands     int
	threshold float64
	slot      map[string]int // item ID → slot
	ids       []string       // slot → item ID
	vecs      [][]float64    // slot → embedding (held by reference)
	// Union-find over slots (union by size, path compression). minSlot and
	// members are maintained at roots only.
	parent  []int
	size    []int
	minSlot []int
	members [][]int
	// buckets lists the member slots per band key in item-ID order; a new
	// item verifies against each co-bucketed item — up to probeCap of them,
	// smallest IDs first — and unions with the ones that clear the
	// threshold. ID order (not insertion order) keeps the capped probe set
	// canonical for a given bucket population.
	buckets  map[uint64][]int
	probeCap int // 0 = unlimited
	// retired collects canonical keys dethroned by merges since the last
	// DrainRetired — the signal that their cached per-partition state now
	// lives under a different (smaller) key.
	retired map[string]bool
}

// NewLSHIndex creates an empty index whose candidate relation — band count
// and cosine verification threshold — matches exactly what ClusterItems
// computes under cfg, including its zero-value fallbacks (the two share one
// normalization, ClusterConfig.candidateParams). Cluster the partitions with
// the same cfg.
func NewLSHIndex(cfg ClusterConfig) *LSHIndex {
	bands, threshold := cfg.candidateParams()
	return &LSHIndex{
		bands:     bands,
		threshold: threshold,
		slot:      make(map[string]int),
		buckets:   make(map[uint64][]int),
		retired:   make(map[string]bool),
		probeCap:  cfg.probeCap(),
	}
}

// Bands returns the band count the index buckets with.
func (x *LSHIndex) Bands() int { return x.bands }

// Len returns the number of indexed items.
func (x *LSHIndex) Len() int { return len(x.ids) }

func (x *LSHIndex) find(s int) int {
	for x.parent[s] != s {
		x.parent[s] = x.parent[x.parent[s]]
		s = x.parent[s]
	}
	return s
}

// union merges the partitions of a and b, keeping the lexicographically
// smaller canonical key and retiring the larger one.
func (x *LSHIndex) union(a, b int) {
	ra, rb := x.find(a), x.find(b)
	if ra == rb {
		return
	}
	if x.size[ra] < x.size[rb] {
		ra, rb = rb, ra
	}
	// ra absorbs rb. The surviving canonical key is the smaller of the two;
	// the other was a partition key until now and is retired.
	winMin, loseMin := x.minSlot[ra], x.minSlot[rb]
	if x.ids[loseMin] < x.ids[winMin] {
		winMin, loseMin = loseMin, winMin
	}
	x.retired[x.ids[loseMin]] = true
	x.parent[rb] = ra
	x.size[ra] += x.size[rb]
	x.minSlot[ra] = winMin
	x.members[ra] = append(x.members[ra], x.members[rb]...)
	x.members[rb] = nil
}

// Add indexes one item, verifying it against every item it shares a band
// bucket with and merging its partition with each verified match. The vector
// is retained by reference (items are immutable once ingested). Re-adding a
// known ID is a no-op. Cost is O(bands · bucket load) dot products — the
// candidate volume ClusterItems would verify for the same item.
func (x *LSHIndex) Add(id string, hash uint64, vec []float64) {
	if _, ok := x.slot[id]; ok {
		return
	}
	s := len(x.ids)
	x.slot[id] = s
	x.ids = append(x.ids, id)
	x.vecs = append(x.vecs, vec)
	x.parent = append(x.parent, s)
	x.size = append(x.size, 1)
	x.minSlot = append(x.minSlot, s)
	x.members = append(x.members, []int{s})
	// bandKey is the same keyspace ClusterItems buckets with (bands is
	// clamped to [1, 16] by candidateParams, so the band tag fits the top
	// nibble).
	for bi := 0; bi < x.bands; bi++ {
		key := bandKey(hash, x.bands, bi)
		bucket := x.buckets[key]
		probe := bucket
		if x.probeCap > 0 && len(probe) > x.probeCap {
			// Degenerate bucket: verify only against the ID-smallest members.
			// Every past member was probed against this same prefix when it
			// arrived, so a family that clears the threshold still unions
			// through the prefix; only threshold-marginal merges can be lost.
			probe = probe[:x.probeCap]
		}
		for _, m := range probe {
			if x.find(m) == x.find(s) {
				continue
			}
			// Vectors hold the EmbedTokens L2 invariant: Dot is cosine.
			if Dot(vec, x.vecs[m]) >= x.threshold {
				x.union(s, m)
			}
		}
		// Insert at the ID-sorted position so capped probing is canonical.
		i := sort.Search(len(bucket), func(i int) bool { return x.ids[bucket[i]] >= id })
		bucket = append(bucket, 0)
		copy(bucket[i+1:], bucket[i:])
		bucket[i] = s
		x.buckets[key] = bucket
	}
}

// Root returns the canonical partition key (smallest member ID) for an
// indexed item.
func (x *LSHIndex) Root(id string) (string, bool) {
	s, ok := x.slot[id]
	if !ok {
		return "", false
	}
	return x.ids[x.minSlot[x.find(s)]], true
}

// Members returns the sorted member IDs of the partition whose canonical key
// is given, or nil when the key is not (or no longer) canonical.
func (x *LSHIndex) Members(key string) []string {
	s, ok := x.slot[key]
	if !ok {
		return nil
	}
	r := x.find(s)
	if x.ids[x.minSlot[r]] != key {
		return nil
	}
	out := make([]string, 0, len(x.members[r]))
	for _, m := range x.members[r] {
		out = append(out, x.ids[m])
	}
	sort.Strings(out)
	return out
}

// Partitions returns every canonical partition key, sorted.
func (x *LSHIndex) Partitions() []string {
	out := make([]string, 0, len(x.ids))
	for s := range x.ids {
		if x.find(s) == s {
			out = append(out, x.ids[x.minSlot[s]])
		}
	}
	sort.Strings(out)
	return out
}

// DrainRetired returns the canonical keys dethroned by merges since the last
// drain, sorted, and clears the set. A caller caching per-partition state by
// canonical key drops these entries; their members are always covered by a
// currently-dirty partition, because keys only retire when a newly added item
// bridges two partitions.
func (x *LSHIndex) DrainRetired() []string {
	if len(x.retired) == 0 {
		return nil
	}
	out := make([]string, 0, len(x.retired))
	for k := range x.retired {
		out = append(out, k)
	}
	sort.Strings(out)
	x.retired = make(map[string]bool)
	return out
}
