package textsim

import (
	"math"
	"testing"
)

func TestExactSilhouetteSeparatedClusters(t *testing.T) {
	vecs := [][]float64{
		{1, 0}, {0.99, 0.01}, {0.98, 0.02},
		{0, 1}, {0.01, 0.99}, {0.02, 0.98},
	}
	assign := []int{0, 0, 0, 1, 1, 1}
	sil := ExactSilhouette(vecs, assign, 2)
	for c, s := range sil {
		if s < 0.8 {
			t.Fatalf("cluster %d exact silhouette %v too low", c, s)
		}
	}
}

func TestExactSilhouetteMixedCluster(t *testing.T) {
	// Cluster 0 contains a point that clearly belongs with cluster 1: its
	// silhouette must drag cluster 0's average down.
	vecs := [][]float64{
		{1, 0}, {0.99, 0.01}, {0.02, 0.99}, // third point misplaced
		{0, 1}, {0.01, 0.98},
	}
	assign := []int{0, 0, 0, 1, 1}
	sil := ExactSilhouette(vecs, assign, 2)
	if sil[0] >= sil[1] {
		t.Fatalf("contaminated cluster must score lower: %v", sil)
	}
}

func TestExactSilhouetteSingleton(t *testing.T) {
	vecs := [][]float64{{1, 0}, {0, 1}, {0.01, 0.99}}
	assign := []int{0, 1, 1}
	sil := ExactSilhouette(vecs, assign, 2)
	if sil[0] != 0 {
		t.Fatalf("singleton cluster silhouette = %v, scikit convention is 0", sil[0])
	}
}

func TestExactSilhouetteZeroK(t *testing.T) {
	if got := ExactSilhouette(nil, nil, 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
}

// TestSilhouetteAgreement validates the pipeline's centroid approximation:
// on compact, well-separated clusters (the regime where the 0.3 filter
// operates) the simplified and exact statistics must agree to within 0.15.
func TestSilhouetteAgreement(t *testing.T) {
	items := makeItems(t, 5, 6)
	vecs := make([][]float64, len(items))
	assign := make([]int, len(items))
	for i, it := range items {
		vecs[i] = it.Vector
		assign[i] = i / 6 // items are generated family-by-family
	}
	exact := ExactSilhouette(vecs, assign, 5)
	approx := SimplifiedSilhouette(vecs, assign, 5)
	for c := range exact {
		if math.Abs(exact[c]-approx[c]) > 0.15 {
			t.Errorf("cluster %d: exact %v vs simplified %v", c, exact[c], approx[c])
		}
		// Both must clear the paper's 0.3 acceptance threshold here.
		if exact[c] < 0.3 || approx[c] < 0.3 {
			t.Errorf("cluster %d below threshold: exact %v simplified %v", c, exact[c], approx[c])
		}
	}
}
