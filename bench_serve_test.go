package malgraph

// Serve-path benchmarks: prove the two claims of the epoch/shard redesign.
//
// BenchmarkServe_ReadsDuringIngest measures the read latency of the epoch
// query surface (the exact work GET /api/v1/stats and /api/v1/node do)
// twice — against an idle pipeline and while a pusher goroutine keeps the
// ingest mutex hot (streaming feed batches and cycling full snapshot
// restores, the longest lock hold the serve surface has). Before the epoch
// redesign these reads queued behind p.mu and the under-ingest p99 tracked
// batch apply time (tens of ms); with lock-free epoch loads it must stay
// within the same order of magnitude as idle.
//
// BenchmarkIngest_ShardedSpeedup times the same multi-ecosystem batch
// sequence through core.Engine.Ingest at GOMAXPROCS=1 versus all cores:
// the per-ecosystem shard planning is the parallel section, the sorted-eco
// graph commit the serial one. The determinism suites pin byte-equality of
// the two runs; this bench records the speedup the parallelism buys.
//
// scripts/bench.sh emits both into BENCH_serve.json; CI gates the
// read-p99-under-ingest ratio (with an absolute-latency escape hatch for
// sub-millisecond p99s, where CPU contention noise dominates) and a
// sharded-speedup floor that still passes on single-core runners.

import (
	"bytes"
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"malgraph/internal/core"
)

// sampleEpochReads performs stats+node epoch reads for at least minDur wall
// time and at least minSamples reads, returning the p50/p99 latency.
func sampleEpochReads(p *Pipeline, probe string, minDur time.Duration, minSamples int) (p50, p99 time.Duration) {
	lat := make([]time.Duration, 0, 1<<16)
	deadline := time.Now().Add(minDur)
	for len(lat) < minSamples || time.Now().Before(deadline) {
		start := time.Now()
		ep := p.CurrentEpoch()
		_ = ep.Stats()
		_, _, _ = ep.Node(probe)
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100]
}

func BenchmarkServe_ReadsDuringIngest(b *testing.B) {
	const (
		feedBatches = 16
		warmBatches = 2
		minSamples  = 512
		window      = 250 * time.Millisecond
	)
	p, err := NewStreamingPipeline(context.Background(), Config{Scale: benchScale()}, feedBatches)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the engine with a couple of batches so reads see a real graph,
	// then checkpoint: the pusher cycles back to this state whenever it
	// drains the feed, so ingest pressure is sustained for any -benchtime.
	for i := 0; i < warmBatches; i++ {
		if _, ok, err := p.AppendNext(); err != nil || !ok {
			b.Fatalf("warm append %d: ok=%v err=%v", i, ok, err)
		}
	}
	var snap bytes.Buffer
	if err := p.SnapshotEngine(&snap); err != nil {
		b.Fatal(err)
	}
	ids := p.Graph.G.NodeIDs()
	if len(ids) == 0 {
		b.Fatal("empty warm graph")
	}
	sort.Strings(ids)
	probe := ids[len(ids)/2]

	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		idle50, idle99 := sampleEpochReads(p, probe, window, minSamples)

		var stop atomic.Bool
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, ok, err := p.AppendNext(); err != nil {
					b.Error(err)
					return
				} else if !ok {
					// Feed drained: restore the warm checkpoint — the longest
					// single p.mu hold the serve surface has (full snapshot
					// decode + engine swap) — and re-drain.
					if err := p.RestoreEngine(bytes.NewReader(snap.Bytes())); err != nil {
						b.Error(err)
						return
					}
				}
			}
		}()
		busy50, busy99 := sampleEpochReads(p, probe, window, minSamples)
		stop.Store(true)
		wg.Wait()

		b.ReportMetric(float64(idle50), "read_idle_p50_ns")
		b.ReportMetric(float64(idle99), "read_idle_p99_ns")
		b.ReportMetric(float64(busy50), "read_ingest_p50_ns")
		b.ReportMetric(float64(busy99), "read_ingest_p99_ns")
		b.ReportMetric(float64(busy99)/float64(idle99), "read_p99_ratio")
	}
}

func BenchmarkIngest_ShardedSpeedup(b *testing.B) {
	p, err := NewStreamingPipeline(context.Background(), Config{Scale: benchScale()}, 1)
	if err != nil {
		b.Fatal(err)
	}
	ds, reportCorpus := p.Source()
	batches := BatchFeed(ds, reportCorpus, 4)
	ingest := func() time.Duration {
		eng := core.NewEngine(core.DefaultConfig())
		start := time.Now()
		for _, batch := range batches {
			if _, err := eng.Ingest(batch); err != nil {
				b.Fatal(err)
			}
		}
		return time.Since(start)
	}
	ingest() // warm caches so the first timed run is not penalized
	procs := runtime.NumCPU()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		old := runtime.GOMAXPROCS(1)
		serial := ingest()
		runtime.GOMAXPROCS(procs)
		parallel := ingest()
		runtime.GOMAXPROCS(old)
		b.ReportMetric(float64(serial), "serial_ingest_ns")
		b.ReportMetric(float64(parallel), "parallel_ingest_ns")
		b.ReportMetric(float64(serial)/float64(parallel), "sharded_speedup")
	}
}
