// Campaign forensics: walk a dependent-hidden attack (§V-C, Fig. 5) the way
// an analyst would — start from the most-reused malicious dependency, find
// the front packages hiding behind it, show how each front references the
// core (manifest vs source import), and pull the co-existing security
// reports with their IoCs.
//
//	go run ./examples/campaignforensics
package main

import (
	"context"
	"fmt"
	"os"

	"malgraph"
	"malgraph/internal/depscan"
	"malgraph/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "campaignforensics:", err)
		os.Exit(1)
	}
}

func run() error {
	p, err := malgraph.BuildPipeline(context.Background(), malgraph.Config{Scale: 0.05, Seed: 7})
	if err != nil {
		return err
	}
	mg := p.Graph

	// 1. Rank hidden dependency cores by how many fronts reuse them
	//    (Table VIII).
	type target struct {
		id    string
		count int
	}
	var best target
	for _, e := range mg.G.Edges(graph.Dependency) {
		// count in-degree per target
		_ = e
	}
	for _, id := range mg.G.NodeIDs() {
		if n := mg.G.InDegree(id, graph.Dependency); n > best.count {
			best = target{id: id, count: n}
		}
	}
	if best.id == "" {
		return fmt.Errorf("no dependency-hidden attacks in this world")
	}
	core, _ := mg.EntryByNodeID(best.id)
	fmt.Printf("most-reused hidden dependency: %s (reused by %d fronts)\n", core.Coord, best.count)
	fmt.Printf("  released %s, removed %s\n\n", core.ReleasedAt.Format("2006-01-02"), core.RemovedAt.Format("2006-01-02"))

	// 2. Enumerate the fronts and how each hides the dependency.
	scanner := depscan.NewScanner()
	fmt.Println("fronts hiding behind it:")
	shown := 0
	for _, frontID := range mg.G.Neighbors(best.id, graph.Dependency) {
		front, ok := mg.EntryByNodeID(frontID)
		if !ok || front.Artifact == nil {
			continue
		}
		channel := "source-import"
		if deps, err := scanner.FromManifest(front.Artifact); err == nil {
			for _, d := range deps {
				if d == core.Coord.Name {
					channel = "manifest"
				}
			}
		}
		matches := scanner.FromSource(front.Artifact, map[string]bool{core.Coord.Name: true})
		if len(matches) > 0 && channel == "manifest" {
			channel = "manifest+source"
		}
		fmt.Printf("  %-40s via %-15s", front.Coord, channel)
		if len(matches) > 0 {
			fmt.Printf(" pattern=%s", matches[0].Pattern)
		}
		fmt.Println()
		shown++
		if shown >= 12 {
			fmt.Println("  …")
			break
		}
	}

	// 3. Show the whole dependency subgraph and its active period.
	for _, sub := range mg.PackageSubgraphs(graph.Dependency, 2) {
		in := false
		for _, id := range sub {
			if id == best.id {
				in = true
				break
			}
		}
		if !in {
			continue
		}
		fmt.Printf("\ndependency subgraph: %d packages\n", len(sub))
		break
	}

	// 4. Pull co-existing security reports and their IoCs.
	reps := mg.ReportsByPackage[best.id]
	if len(reps) == 0 {
		// Fall back to any front's reports.
		for _, frontID := range mg.G.Neighbors(best.id, graph.Dependency) {
			if rs := mg.ReportsByPackage[frontID]; len(rs) > 0 {
				reps = rs
				break
			}
		}
	}
	fmt.Printf("\nsecurity reports covering the campaign: %d\n", len(reps))
	for i, rep := range reps {
		if i >= 3 {
			break
		}
		fmt.Printf("  %s\n    %q\n    IoCs: %d URLs, %d IPs\n", rep.URL, rep.Title, len(rep.IoCs.URLs), len(rep.IoCs.IPs))
		for j, u := range rep.IoCs.URLs {
			if j >= 3 {
				break
			}
			fmt.Printf("      %s\n", u)
		}
	}
	return nil
}
