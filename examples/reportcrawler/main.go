// Report crawler: run the §III-D collection of security analysis reports —
// seed the crawler with vendor sites, expand through links and the search
// engine, parse package mentions and IoCs out of the page bodies, and
// summarise the malware context (Fig. 14).
//
//	go run ./examples/reportcrawler
package main

import (
	"context"
	"fmt"
	"os"

	"malgraph/internal/analysis"
	"malgraph/internal/crawler"
	"malgraph/internal/reports"
	"malgraph/internal/world"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "reportcrawler:", err)
		os.Exit(1)
	}
}

func run() error {
	w, err := world.Build(world.Config{Seed: 3, Scale: 0.08})
	if err != nil {
		return err
	}
	fmt.Printf("synthetic web: %d pages across the Table III site categories\n", w.Web.PageCount())
	fmt.Printf("crawl seeds (commercial vendors + individual blogs): %d\n\n", len(w.SeedURLs))

	c := crawler.New(w.Web, w.Web, crawler.Config{MaxPages: 100000, Workers: 4})
	res := c.Crawl(context.Background(), w.SeedURLs)
	fmt.Printf("fetched %d pages: %d relevant, %d skipped as irrelevant, %d dead links\n",
		res.Fetched, len(res.Relevant), res.Skipped, res.Errors)

	corpus := reports.FromPages(res.Relevant, w.Config.CollectAt)
	fmt.Printf("parsed %d security reports (world published %d)\n\n", len(corpus), len(w.Reports))

	// Show one report end to end.
	if len(corpus) > 0 {
		r := corpus[0]
		fmt.Printf("sample report: %s\n  title: %q\n  packages named: %d, URLs: %d, IPs: %d, PowerShell: %d\n\n",
			r.URL, r.Title, len(r.Packages), len(r.IoCs.URLs), len(r.IoCs.IPs), len(r.IoCs.PowerShell))
	}

	// Fig. 14: top malicious domains across the whole corpus.
	summary := analysis.IoCs(corpus, 10)
	fmt.Printf("IoC totals: %d unique URLs, %d IPs, %d PowerShell commands (paper: 1,449/234/4)\n",
		summary.UniqueURLs, summary.UniqueIPs, summary.PowerShell)
	fmt.Println("top malicious domains (Fig 14):")
	for i, d := range summary.TopDomains {
		fmt.Printf("  %2d. %-28s %d URLs\n", i+1, d.Domain, d.Count)
	}
	return nil
}
