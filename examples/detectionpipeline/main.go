// Detection pipeline: exercise the §VI-A security application — scan
// packages with the GuardDog-style rule scanner, extract ML features, and
// run the diversity-aware Table X experiment on MALGRAPH's NPM clusters.
//
//	go run ./examples/detectionpipeline
package main

import (
	"context"
	"fmt"
	"os"

	"malgraph"
	"malgraph/internal/codegen"
	"malgraph/internal/detect"
	"malgraph/internal/ecosys"
	"malgraph/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "detectionpipeline:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Static scanning: one malicious and one benign artifact.
	rng := xrand.New(11)
	mal := codegen.NewCodeBase("demo", ecosys.NPM, codegen.PayloadCredentialTheft, rng.Derive("mal")).
		Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "lodaash", Version: "1.0.2"},
			codegen.Options{Description: "the best toolkit"})
	ben := codegen.NewBenignBase("demo-b", ecosys.NPM, codegen.PurposeTelemetry, rng.Derive("ben")).
		Instantiate(ecosys.Coord{Ecosystem: ecosys.NPM, Name: "usage-metrics", Version: "2.1.0"}, "opt-in usage metrics", nil)

	scanner := detect.NewScanner()
	fmt.Println("rule scanner findings for the malicious package:")
	for _, f := range scanner.Scan(mal) {
		fmt.Printf("  [%s] %s (%s)\n", f.Rule, f.File, f.Evidence)
	}
	fmt.Printf("benign telemetry package flagged: %v (hard negative: env+http, no exfil combo)\n\n", scanner.Flagged(ben))

	// 2. Feature extraction.
	fmt.Println("feature vector (malicious vs benign):")
	fm, fb := detect.Features(mal), detect.Features(ben)
	for i, name := range detect.FeatureNames {
		fmt.Printf("  %-16s %8.2f %8.2f\n", name, fm[i], fb[i])
	}

	// 3. The Table X experiment over the real pipeline's clusters.
	p, err := malgraph.BuildPipeline(context.Background(), malgraph.Config{Scale: 0.1, Seed: 11})
	if err != nil {
		return err
	}
	rows, err := p.RunDetection(15)
	if err != nil {
		return err
	}
	fmt.Printf("\nTable X on %d NPM clusters (15 iterations):\n", len(p.NPMClusters()))
	fmt.Println("  alg   acc w/o   acc w/   recall w/o   recall w/")
	for _, r := range rows {
		fmt.Printf("  %-4s  %.3f     %.3f    %.3f        %.3f\n",
			r.Algorithm, r.AccWithout, r.AccWith, r.RecallWithout, r.RecallWith)
	}
	fmt.Println("\n(diversity-aware sampling — the \"w/\" columns — trains on two packages")
	fmt.Println(" from every MALGRAPH similar-cluster instead of a random sample)")
	return nil
}
