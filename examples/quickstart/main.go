// Quickstart: run the full MalGraph reproduction pipeline at small scale and
// render every table and figure of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"malgraph"
)

func main() {
	start := time.Now()
	results, err := malgraph.Run(malgraph.Config{
		Scale: 0.05, // ≈1.2k packages; use 1.0 for the paper-size corpus
		Seed:  42,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
	results.Render(os.Stdout)
	fmt.Printf("\npipeline finished in %v\n", time.Since(start).Round(time.Millisecond))
}
