package malgraph

// The parallel MALGRAPH construction promises bit-identical output to a
// sequential run for a fixed seed (ISSUE: "parallel == sequential graph").
// These tests build the pipeline under GOMAXPROCS=1 and under a forced
// multi-worker setting and require the graphs to agree exactly: same nodes,
// same per-type edge counts, same serialized bytes (which pins edge
// insertion order, attributes and cluster labels), and same SimilarClusters
// membership.

import (
	"bytes"
	"context"
	"runtime"
	"testing"

	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
)

// buildAt builds the pipeline with the given GOMAXPROCS, restoring the
// previous setting before returning.
func buildAt(t *testing.T, procs int, scale float64) *Pipeline {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	p, err := BuildPipeline(context.Background(), Config{Scale: scale})
	if err != nil {
		t.Fatalf("BuildPipeline(GOMAXPROCS=%d): %v", procs, err)
	}
	return p
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	seq := buildAt(t, 1, 0.05)
	par := buildAt(t, 8, 0.05) // forced >1 even on single-core machines

	if got, want := par.Graph.G.NodeCount(), seq.Graph.G.NodeCount(); got != want {
		t.Errorf("node count: parallel %d, sequential %d", got, want)
	}
	for _, et := range graph.EdgeTypes() {
		if got, want := par.Graph.G.EdgeCount(et), seq.Graph.G.EdgeCount(et); got != want {
			t.Errorf("%s edge count: parallel %d, sequential %d", et, got, want)
		}
	}

	// Byte-level equality pins everything the counts can miss: node
	// attributes, edge endpoints and order, cluster/silhouette labels.
	var seqJSON, parJSON bytes.Buffer
	if err := seq.Graph.G.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := par.Graph.G.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Errorf("serialized graphs differ (%d vs %d bytes)", seqJSON.Len(), parJSON.Len())
	}

	// SimilarClusters membership, per ecosystem, in order.
	for _, eco := range []ecosys.Ecosystem{ecosys.NPM, ecosys.PyPI, ecosys.RubyGems} {
		sc, pc := seq.Graph.SimilarClusters[eco], par.Graph.SimilarClusters[eco]
		if len(sc) != len(pc) {
			t.Errorf("%s: %d clusters sequential, %d parallel", eco, len(sc), len(pc))
			continue
		}
		for i := range sc {
			if sc[i].Silhouette != pc[i].Silhouette {
				t.Errorf("%s cluster %d: silhouette %v vs %v", eco, i, sc[i].Silhouette, pc[i].Silhouette)
			}
			if len(sc[i].Members) != len(pc[i].Members) {
				t.Errorf("%s cluster %d: %d members vs %d", eco, i, len(sc[i].Members), len(pc[i].Members))
				continue
			}
			for j := range sc[i].Members {
				if sc[i].Members[j] != pc[i].Members[j] {
					t.Errorf("%s cluster %d member %d: %q vs %q",
						eco, i, j, sc[i].Members[j], pc[i].Members[j])
				}
			}
		}
	}
}

// TestParallelIncrementalBuildMatchesSequential pins the LSH-scoped path's
// GOMAXPROCS determinism where it actually runs hot: a *streaming* build
// (five batches, so partial re-clustering with per-partition worker fan-out
// fires on every append) must serialize byte-identically under 1 and 8
// workers.
func TestParallelIncrementalBuildMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	buildStreaming := func(procs int) *Pipeline {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		p, err := NewStreamingPipeline(context.Background(), Config{Scale: 0.05}, 5)
		if err != nil {
			t.Fatalf("NewStreamingPipeline(GOMAXPROCS=%d): %v", procs, err)
		}
		for {
			if _, ok, err := p.AppendNext(); err != nil {
				t.Fatal(err)
			} else if !ok {
				break
			}
		}
		return p
	}
	seq := buildStreaming(1)
	par := buildStreaming(8)
	var seqJSON, parJSON bytes.Buffer
	if err := seq.Graph.G.WriteJSON(&seqJSON); err != nil {
		t.Fatal(err)
	}
	if err := par.Graph.G.WriteJSON(&parJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON.Bytes(), parJSON.Bytes()) {
		t.Errorf("incremental serialized graphs differ (%d vs %d bytes)", seqJSON.Len(), parJSON.Len())
	}
}

// TestParallelAnalyzeMatchesSequential runs the full Analyze stage (the
// fanned-out RQ1–RQ4 blocks) under both settings and compares the rendered
// reports, which serialize every table and figure.
func TestParallelAnalyzeMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	render := func(procs int) string {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		res, err := Run(Config{Scale: 0.05})
		if err != nil {
			t.Fatalf("Run(GOMAXPROCS=%d): %v", procs, err)
		}
		var buf bytes.Buffer
		res.Render(&buf)
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("rendered results differ between GOMAXPROCS=1 and 8:\n--- seq len %d\n--- par len %d", len(seq), len(par))
	}
}
