package malgraph

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// one shared small pipeline per test binary.
var sharedResults *Results

func runSmall(t *testing.T) *Results {
	t.Helper()
	if sharedResults != nil {
		return sharedResults
	}
	// Scale 0.10 keeps enough NPM code-base families (~16) that random
	// training sampling genuinely misses some — the Table X effect needs
	// family diversity to exist in the first place.
	res, err := Run(Config{Scale: 0.10, Detection: true, DetectionIterations: 10})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	sharedResults = res
	return res
}

func TestRunProducesEveryArtifact(t *testing.T) {
	r := runSmall(t)
	if r.TotalPackages == 0 || r.Available == 0 || r.Missing == 0 {
		t.Fatalf("corpus counts: %+v", r)
	}
	if len(r.SourceSizes) != 10 {
		t.Fatalf("Table I rows = %d", len(r.SourceSizes))
	}
	if len(r.Overlap) != 10 || len(r.OverlapNames) != 10 {
		t.Fatalf("Table IV shape wrong")
	}
	if len(r.MissingRates) != 10 {
		t.Fatalf("Table V rows = %d", len(r.MissingRates))
	}
	if len(r.OccurrenceCDF) != 3 {
		t.Fatalf("Fig 6 ecosystems = %d", len(r.OccurrenceCDF))
	}
	if len(r.Timeline) < 8 {
		t.Fatalf("Fig 7 buckets = %d", len(r.Timeline))
	}
	if r.MissingCauses.ShortPersistence == 0 {
		t.Fatal("Fig 8 causes empty")
	}
	if len(r.SimilarSubgraphs) == 0 || len(r.DependencySubgraphs) == 0 || len(r.CoexistSubgraphs) == 0 {
		t.Fatal("subgraph tables empty")
	}
	if r.SimilarOps.Transitions == 0 || r.CoexistOps.Transitions == 0 {
		t.Fatal("operation distributions empty")
	}
	if r.SimilarActive.Groups == 0 || r.DependencyActive.Groups == 0 || r.CoexistActive.Groups == 0 {
		t.Fatal("active-period stats empty")
	}
	if len(r.DependencyTargets) == 0 || r.DepCores == 0 || r.DepFronts == 0 {
		t.Fatal("Table VIII empty")
	}
	if r.IoCs.UniqueURLs == 0 || len(r.TopDomains) == 0 {
		t.Fatal("Fig 14 empty")
	}
	if len(r.Behaviors) == 0 {
		t.Fatal("Table XI empty")
	}
	if len(r.Detection) != 4 {
		t.Fatalf("Table X rows = %d", len(r.Detection))
	}
	if r.Validation.VerifiedRate != 1.0 {
		t.Fatalf("validation verified rate = %v (paper: 100%%)", r.Validation.VerifiedRate)
	}
}

func TestPaperFindingsHold(t *testing.T) {
	r := runSmall(t)

	// Finding 1: low overlap, high missing rate.
	if r.TotalMR < 0.2 || r.TotalMR > 0.6 {
		t.Errorf("total missing rate %v out of paper neighbourhood", r.TotalMR)
	}

	// Finding 2: low diversity — far fewer groups than packages; CN is the
	// dominant operation.
	var simGroups, simPkgs int
	for _, s := range r.SimilarSubgraphs {
		simGroups += s.SubgraphNum
		simPkgs += s.PkgNum
	}
	if simGroups == 0 || simPkgs < simGroups*2 {
		t.Errorf("diversity shape wrong: %d groups / %d pkgs", simGroups, simPkgs)
	}
	if r.SimilarOps.CN < r.SimilarOps.CV {
		t.Errorf("CN (%v) must dominate CV (%v)", r.SimilarOps.CN, r.SimilarOps.CV)
	}

	// Finding 3: dependency-hidden campaigns live shorter than similar-code
	// campaigns.
	if r.DependencyActive.MeanDays >= r.SimilarActive.MeanDays {
		t.Errorf("dep mean %.1fd should be below similar mean %.1fd",
			r.DependencyActive.MeanDays, r.SimilarActive.MeanDays)
	}

	// Finding 4: reports disclose context — IoC ordering URLs > IPs > PS.
	if !(r.IoCs.UniqueURLs > r.IoCs.UniqueIPs && r.IoCs.UniqueIPs > r.IoCs.PowerShell) {
		t.Errorf("IoC ordering wrong: %+v", r.IoCs)
	}

	// §VI-A: diversity-aware training must lift average recall (paper ≈
	// +10%). At the tiny test scale individual models can saturate and tie,
	// so we require the average to not regress and at least one model to
	// strictly improve.
	var withSum, withoutSum float64
	strictlyBetter := false
	for _, d := range r.Detection {
		withSum += d.RecallWith
		withoutSum += d.RecallWithout
		if d.RecallWith > d.RecallWithout {
			strictlyBetter = true
		}
	}
	if withSum < withoutSum || !strictlyBetter {
		t.Errorf("diversity-aware recall %.3f must beat random sampling %.3f (strict improvement: %v)",
			withSum/4, withoutSum/4, strictlyBetter)
	}
}

func TestRenderMentionsEveryArtifact(t *testing.T) {
	r := runSmall(t)
	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table IV", "Table V", "Fig 6", "Fig 7", "Fig 8",
		"Table VI", "Fig 9", "Fig 10", "Table VII", "Table VIII", "Fig 11",
		"Table IX", "Fig 12", "Fig 13", "Fig 14", "Table X", "Table XI",
		"§IV-A", "bananasquad.ru",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestBuildPipelineExposesInternals(t *testing.T) {
	p, err := BuildPipeline(context.Background(), Config{Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if p.World == nil || p.Dataset == nil || p.Graph == nil {
		t.Fatal("pipeline stages missing")
	}
	if len(p.GroundTruth()) == 0 {
		t.Fatal("ground truth empty")
	}
	if len(p.NPMClusters()) == 0 {
		t.Fatal("no NPM clusters")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed == 0 || c.Scale != 0.05 || c.MinBehaviorGroup < 3 {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := Config{Detection: true}.withDefaults()
	if c2.DetectionIterations != 50 {
		t.Fatalf("detection iterations default = %d", c2.DetectionIterations)
	}
}
