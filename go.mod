module malgraph

go 1.24
