package malgraph

// Tests for the streaming ingest architecture's determinism contract
// (ISSUE 2): ingesting the corpus in any batch partition must yield a graph
// whose components and all RQ analyses are identical to a one-shot Build.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"malgraph/internal/castore"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/graph"
	"malgraph/internal/reports"
	"malgraph/internal/wal"
	"malgraph/internal/xrand"
)

// oneShot builds the classic batch pipeline and its Results once per scale.
func oneShot(t *testing.T, scale float64) (*Pipeline, *Results) {
	t.Helper()
	p, err := BuildPipeline(context.Background(), Config{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func assertResultsEqual(t *testing.T, got, want *Results, label string) {
	t.Helper()
	if reflect.DeepEqual(got, want) {
		return
	}
	// Localise the difference for debuggability before failing.
	gv, wv := reflect.ValueOf(*got), reflect.ValueOf(*want)
	tp := gv.Type()
	for i := 0; i < tp.NumField(); i++ {
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("%s: Results.%s differs:\n got %v\nwant %v",
				label, tp.Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
	if !t.Failed() {
		t.Errorf("%s: Results differ in unexported state", label)
	}
}

func assertComponentsEqual(t *testing.T, got, want *core.MalGraph, label string) {
	t.Helper()
	for _, et := range graph.EdgeTypes() {
		g, w := got.PackageSubgraphs(et, 2), want.PackageSubgraphs(et, 2)
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: %s component structure differs (%d vs %d subgraphs)", label, et, len(g), len(w))
		}
		if gc, wc := got.G.EdgeCount(et), want.G.EdgeCount(et); gc != wc {
			t.Errorf("%s: %s edge count %d, want %d", label, et, gc, wc)
		}
	}
}

// edgeSet canonicalises one edge type's edges — endpoints ordered for
// undirected types, attrs serialised — so two graphs can be compared as
// sets, independent of insertion order.
func edgeSet(mg *core.MalGraph, et graph.EdgeType) map[string]bool {
	set := make(map[string]bool)
	for _, e := range mg.G.Edges(et) {
		from, to := e.From, e.To
		if et != graph.Dependency && from > to {
			from, to = to, from
		}
		keys := make([]string, 0, len(e.Attrs))
		for k := range e.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		line := from + "|" + to
		for _, k := range keys {
			line += "|" + k + "=" + e.Attrs[k]
		}
		set[line] = true
	}
	return set
}

// assertEdgeSetsEqual requires the exact per-type edge sets — endpoints AND
// attributes (cluster labels, silhouettes, report URLs) — to match. This is
// stronger than component equality: it pins the LSH-scoped path's partition
// labels and per-partition silhouettes as content-derived values no batch
// partition can perturb.
func assertEdgeSetsEqual(t *testing.T, got, want *core.MalGraph, label string) {
	t.Helper()
	for _, et := range graph.EdgeTypes() {
		g, w := edgeSet(got, et), edgeSet(want, et)
		if len(g) != len(w) {
			t.Errorf("%s: %s edge set size %d, want %d", label, et, len(g), len(w))
		}
		for e := range w {
			if !g[e] {
				t.Errorf("%s: %s edge missing: %s", label, et, e)
			}
		}
		for e := range g {
			if !w[e] {
				t.Errorf("%s: %s edge unexpected: %s", label, et, e)
			}
		}
	}
}

// TestIncrementalTenBatchesMatchesOneShot is the acceptance criterion:
// Scale=0.05, the corpus ingested in 10 time-ordered batches via
// Engine.Ingest, producing identical Results (all RQ tables) to a one-shot
// core.Build.
func TestIncrementalTenBatchesMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	batch, want := oneShot(t, 0.05)

	p, err := NewStreamingPipeline(context.Background(), Config{Scale: 0.05}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.PendingBatches(); got != 10 {
		t.Fatalf("pending batches = %d", got)
	}
	steps := 0
	for {
		_, ok, err := p.AppendNext()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		steps++
		// Analyze mid-stream to exercise the cache invalidation path on
		// every batch, not just the final state.
		if _, err := p.Analyze(); err != nil {
			t.Fatalf("analyze after batch %d: %v", steps, err)
		}
	}
	if steps != 10 {
		t.Fatalf("fed %d batches", steps)
	}
	got, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	assertComponentsEqual(t, p.Graph, batch.Graph, "10-batch")
	assertEdgeSetsEqual(t, p.Graph, batch.Graph, "10-batch")
	assertResultsEqual(t, got, want, "10-batch")

	// The rendered report — every table and figure — must match too.
	var gb, wb bytes.Buffer
	got.Render(&gb)
	want.Render(&wb)
	if gb.String() != wb.String() {
		t.Error("10-batch rendered results differ from one-shot")
	}
}

// TestShuffledBatchIngestMatchesOneShot is the satellite property test: the
// corpus shuffled into k ∈ {1, 3, 10} batches must reproduce the one-shot
// component structure and every Results table, for the same seed.
func TestShuffledBatchIngestMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.05
	batch, want := oneShot(t, scale)

	for _, k := range []int{1, 3, 10} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			p, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
			if err != nil {
				t.Fatal(err)
			}
			// Re-partition the collected world by shuffling its entries
			// (seeded by k so every subtest sees a different order).
			ds, reportCorpus := p.Source()
			entries := make([]*collect.Entry, len(ds.Entries))
			copy(entries, ds.Entries)
			rng := xrand.New(uint64(1000 + k))
			for i := len(entries) - 1; i > 0; i-- {
				j := int(rng.Uint64() % uint64(i+1))
				entries[i], entries[j] = entries[j], entries[i]
			}
			for bi, cb := range collect.PartitionBatches(ds, entries, k) {
				b := core.Batch{Entries: cb.Entries, PerSource: cb.PerSource, Stats: cb.Stats, At: cb.At}
				lo, hi := bi*len(reportCorpus)/k, (bi+1)*len(reportCorpus)/k
				b.Reports = reportCorpus[lo:hi]
				if _, err := p.Append(b); err != nil {
					t.Fatalf("append shuffled batch %d: %v", bi, err)
				}
			}
			got, err := p.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			assertComponentsEqual(t, p.Graph, batch.Graph, fmt.Sprintf("shuffle k=%d", k))
			assertEdgeSetsEqual(t, p.Graph, batch.Graph, fmt.Sprintf("shuffle k=%d", k))
			assertResultsEqual(t, got, want, fmt.Sprintf("shuffle k=%d", k))
		})
	}
}

// --- Incremental-vs-rebuild benchmarks (ISSUE 2 acceptance) ---

var (
	incBenchOnce    sync.Once
	incBenchDataset *collect.Result
	incBenchReports []*reports.Report
	incBenchErr     error
)

// incrementalBenchWorld collects the bench-scale corpus once per binary.
func incrementalBenchWorld(b *testing.B) (*collect.Result, []*reports.Report) {
	b.Helper()
	incBenchOnce.Do(func() {
		var p *Pipeline
		p, incBenchErr = NewStreamingPipeline(context.Background(), Config{Scale: benchScale()}, 1)
		if incBenchErr == nil {
			incBenchDataset, incBenchReports = p.Source()
		}
	})
	if incBenchErr != nil {
		b.Fatalf("bench world: %v", incBenchErr)
	}
	return incBenchDataset, incBenchReports
}

// BenchmarkIncremental_FullRebuild is the baseline the streaming engine
// competes against: a complete core.Build of the corpus, the cost every new
// observation used to pay.
func BenchmarkIncremental_FullRebuild(b *testing.B) {
	ds, reportCorpus := incrementalBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg, err := core.Build(ds, reportCorpus, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(mg.G.EdgeCount()), "edges")
	}
}

// BenchmarkIncremental_Append measures ingesting a 1% timeline delta into an
// engine warm with the other 99% — the steady-state cost of the streaming
// architecture. Engine state is reset between iterations via
// Snapshot/Restore (outside the timer), so every measured Ingest performs
// identical work.
func BenchmarkIncremental_Append(b *testing.B) {
	ds, reportCorpus := incrementalBenchWorld(b)
	feed := BatchFeed(ds, reportCorpus, 100)
	if len(feed) < 2 {
		b.Fatalf("feed too small: %d batches", len(feed))
	}
	delta := feed[len(feed)-1]
	base := core.NewEngine(core.DefaultConfig())
	for _, batch := range feed[:len(feed)-1] {
		if _, err := base.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := base.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(delta.Entries)), "delta_entries")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := core.RestoreEngine(bytes.NewReader(snap.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		// Restore churns decoder garbage; collect it outside the timer so
		// the measured op is the append, not the reset harness.
		runtime.GC()
		b.StartTimer()
		st, err := eng.Ingest(delta)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(st.Reclustered)), "reclustered_ecos")
		b.ReportMetric(float64(st.NewArtifacts), "new_artifacts")
	}
}

// BenchmarkIncremental_JournaledAppend is BenchmarkIncremental_Append with
// the ISSUE 6 durability tax in the measured op: the delta's journal record
// is marshalled and appended (fsync'd) to a WAL before the engine ingests
// it — exactly what serve's -wal mode does per accepted feed batch. The CI
// gate requires journaled ≤ 1.5× the in-memory append: durability must cost
// one fsync, not a second ingest. The WAL component is timed on its own and
// reported two ways: wal_append_ns (the mean, informational) and wal_min_ns
// (the per-iteration minimum, which the CI gate uses). The mean fsync
// latency on shared infrastructure swings severalfold with ambient disk
// load, but the minimum is the code's intrinsic durability tax — a
// structural regression (a second fsync, a bloated record) raises every
// iteration including the quietest one, while a busy disk does not. The
// compute side of the ratio comes from the same run (journaled mean minus
// WAL mean), so ingest noise cancels too.
func BenchmarkIncremental_JournaledAppend(b *testing.B) {
	ds, reportCorpus := incrementalBenchWorld(b)
	feed := BatchFeed(ds, reportCorpus, 100)
	if len(feed) < 2 {
		b.Fatalf("feed too small: %d batches", len(feed))
	}
	delta := feed[len(feed)-1]
	base := core.NewEngine(core.DefaultConfig())
	for _, batch := range feed[:len(feed)-1] {
		if _, err := base.Ingest(batch); err != nil {
			b.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := base.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	j, err := wal.Open(b.TempDir(), nil)
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.ReportMetric(float64(len(delta.Entries)), "delta_entries")
	var walTime, walMin time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := core.RestoreEngine(bytes.NewReader(snap.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.StartTimer()
		walStart := time.Now()
		payload, err := json.Marshal(feedRecord{Index: len(feed) - 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.Append(recFeed, payload); err != nil {
			b.Fatal(err)
		}
		walStep := time.Since(walStart)
		walTime += walStep
		if walMin == 0 || walStep < walMin {
			walMin = walStep
		}
		if _, err := eng.Ingest(delta); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(walTime.Nanoseconds())/float64(b.N), "wal_append_ns")
	b.ReportMetric(float64(walMin.Nanoseconds()), "wal_min_ns")
}

// --- Append-growth benchmark (ISSUE 4 acceptance) ---
//
// The LSH-scoped re-clustering claim is that append cost tracks the delta,
// not the corpus: the same append into a 10× corpus must cost about the same
// as into a 1× corpus (acceptance: ≤ 2×). One world is built at 10× the
// bench scale and cut into 1000 timeline batches, so each batch is ≈1% of
// the 1× corpus; the benchmark warms an engine with a 100/400/998-batch
// prefix (1×/4×/10× corpus) plus the full report corpus, then times
// ingesting the SAME held-out final batch against each — identical delta
// work (embedding, scanning, report joins), growing corpus, so the ratio
// isolates exactly the corpus-scaling terms the partition scoping removes.

type growthState struct {
	snap  []byte
	delta core.Batch
}

var (
	growthMu          sync.Mutex
	growthDS          *collect.Result
	growthReps        []*reports.Report
	growthFeed        []core.Batch
	growthErr         error
	growthCache       map[int]*growthState
	reportGrowthCache map[int]*growthState
)

// growthWorldLocked lazily builds the shared 10×-bench-scale world both
// growth benchmarks cut their prefixes from. Callers hold growthMu.
func growthWorldLocked(b *testing.B) {
	b.Helper()
	if growthDS == nil && growthErr == nil {
		var p *Pipeline
		p, growthErr = NewStreamingPipeline(context.Background(), Config{Scale: benchScale() * 10}, 1)
		if growthErr == nil {
			growthDS, growthReps = p.Source()
			growthFeed = BatchFeed(growthDS, growthReps, 1000)
			growthCache = make(map[int]*growthState)
			reportGrowthCache = make(map[int]*growthState)
		}
	}
	if growthErr != nil {
		b.Fatalf("growth world: %v", growthErr)
	}
}

func growthSetup(b *testing.B, prefix int) *growthState {
	b.Helper()
	growthMu.Lock()
	defer growthMu.Unlock()
	growthWorldLocked(b)
	if st := growthCache[prefix]; st != nil {
		return st
	}
	if prefix+1 > len(growthFeed) {
		b.Fatalf("growth feed too small: %d batches, need %d", len(growthFeed), prefix+1)
	}
	// Warm with the entry prefix plus EVERY report, so the held-out delta
	// performs identical report-join work against each corpus size.
	warm := mergeBatches(growthFeed)
	warm.Entries = nil
	for _, fb := range growthFeed[:prefix] {
		warm.Entries = append(warm.Entries, fb.Entries...)
	}
	eng := core.NewEngine(core.DefaultConfig())
	if _, err := eng.Ingest(warm); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	last := growthFeed[len(growthFeed)-1]
	st := &growthState{snap: snap.Bytes(), delta: core.Batch{Entries: last.Entries, Stats: last.Stats, At: last.At}}
	growthCache[prefix] = st
	return st
}

// mergeBatches concatenates feed batches into one warm-up ingest. Per-entry
// stats are absolute, so the latest batch's stat per coordinate wins.
func mergeBatches(batches []core.Batch) core.Batch {
	var out core.Batch
	stats := make(map[string]collect.EntryStat)
	for _, b := range batches {
		out.Entries = append(out.Entries, b.Entries...)
		out.Reports = append(out.Reports, b.Reports...)
		for k, v := range b.Stats {
			stats[k] = v
		}
		if out.At.IsZero() {
			out.At = b.At
		}
	}
	out.Stats = stats
	return out
}

// BenchmarkIncremental_AppendGrowth measures a fixed ≈1%-of-base append at
// 1×/4×/10× corpus sizes. Flat (≤2× at 10×) means re-clustering is scoped to
// the touched LSH partitions; O(ecosystem) growth here is the regression the
// CI gate on BENCH_incremental.json catches.
func BenchmarkIncremental_AppendGrowth(b *testing.B) {
	for _, size := range []struct {
		name   string
		prefix int
	}{{"1x", 100}, {"4x", 400}, {"10x", 998}} {
		b.Run("size="+size.name, func(b *testing.B) {
			st := growthSetup(b, size.prefix)
			b.ReportMetric(float64(len(st.delta.Entries)), "delta_entries")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := core.RestoreEngine(bytes.NewReader(st.snap))
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				b.StartTimer()
				is, err := eng.Ingest(st.delta)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(is.PartitionsReclustered), "partitions_touched")
				b.ReportMetric(float64(is.ArtifactsReclustered), "artifacts_reclustered")
				b.ReportMetric(float64(is.DirtyEcoItems), "dirty_eco_items")
				rebuilt := 0.0
				if is.CoexistingRebuilt {
					rebuilt = 1.0
				}
				b.ReportMetric(rebuilt, "coexisting_rebuilt")
			}
		})
	}
}

// --- Report-append growth benchmark (ISSUE 5 acceptance) ---
//
// The scoped co-existing re-join claim is that a wanted-package arrival
// costs O(reports naming it), not O(report corpus): the same package delta
// ingested against a 10× report corpus must cost about the same as against
// a 1× corpus. The entry corpus is held CONSTANT across sizes (the shared
// 10× growth world minus the packages named by its first report) and only
// the URL-ordered report prefix grows, so the ratio isolates exactly the
// report-join term the posting-list index removes — before ISSUE 5 this
// delta triggered a full RemoveEdgesWhere + O(total reports) re-derivation.

// reportGrowthSetup warms an engine with the constant entry corpus plus a
// tenths/10 report prefix, holding out the packages the first report names;
// the held-out packages are the wanted-arrival delta every size re-ingests.
func reportGrowthSetup(b *testing.B, tenths int) *growthState {
	b.Helper()
	growthMu.Lock()
	defer growthMu.Unlock()
	growthWorldLocked(b)
	if st := reportGrowthCache[tenths]; st != nil {
		return st
	}
	if len(growthReps) < 10 {
		b.Fatalf("growth world has %d reports, need 10", len(growthReps))
	}
	prefix := len(growthReps) * tenths / 10
	held := make(map[string]bool)
	for _, coord := range growthReps[0].Packages {
		held[coord.Key()] = true
	}
	var warmEntries, deltaEntries []*collect.Entry
	for _, e := range growthDS.Entries {
		if held[e.Coord.Key()] {
			deltaEntries = append(deltaEntries, e)
		} else {
			warmEntries = append(warmEntries, e)
		}
	}
	if len(deltaEntries) == 0 {
		b.Fatal("first report names no collected packages")
	}
	warm := growthDS.BatchOf(warmEntries)
	eng := core.NewEngine(core.DefaultConfig())
	if _, err := eng.Ingest(core.Batch{
		Entries: warm.Entries, Stats: warm.Stats,
		Reports: growthReps[:prefix], At: warm.At,
	}); err != nil {
		b.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Snapshot(&snap); err != nil {
		b.Fatal(err)
	}
	delta := growthDS.BatchOf(deltaEntries)
	st := &growthState{snap: snap.Bytes(), delta: core.Batch{Entries: delta.Entries, Stats: delta.Stats, At: delta.At}}
	reportGrowthCache[tenths] = st
	return st
}

// BenchmarkIncremental_ReportAppendGrowth measures a fixed wanted-package
// delta at 1×/4×/10× report-corpus sizes. Flat (≤2× at 10×, CI-gated at 3×
// for smoke noise) means the re-join is scoped to the reports naming the
// delta; O(report corpus) growth here is the regression the gate on
// BENCH_incremental.json catches.
func BenchmarkIncremental_ReportAppendGrowth(b *testing.B) {
	for _, size := range []struct {
		name   string
		tenths int
	}{{"1x", 1}, {"4x", 4}, {"10x", 10}} {
		b.Run("size="+size.name, func(b *testing.B) {
			st := reportGrowthSetup(b, size.tenths)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				eng, err := core.RestoreEngine(bytes.NewReader(st.snap))
				if err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				b.StartTimer()
				is, err := eng.Ingest(st.delta)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if !is.CoexistingScoped && !is.CoexistingRebuilt {
					b.Fatal("delta did not trigger a co-existing re-join")
				}
				b.StartTimer()
				b.ReportMetric(float64(len(st.delta.Entries)), "delta_entries")
				b.ReportMetric(float64(is.ReportsRejoined), "reports_rejoined")
				b.ReportMetric(float64(is.CoexistingEdgesReplaced), "coexisting_edges_replaced")
				b.ReportMetric(float64(len(eng.Reports())), "reports_total")
				rebuilt := 0.0
				if is.CoexistingRebuilt {
					rebuilt = 1.0
				}
				b.ReportMetric(rebuilt, "coexisting_rebuilt")
			}
		})
	}
}

// TestAnalyzeCacheMatchesFresh verifies the Results-cache invalidation: an
// Analyze served partly from cache after a delta append equals a fresh
// full analysis of the same state.
func TestAnalyzeCacheMatchesFresh(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	p, err := NewStreamingPipeline(context.Background(), Config{Scale: 0.05}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Ingest all but the last batch, analyze (warms the cache), then append
	// the final delta and analyze again — partially from cache.
	for p.PendingBatches() > 1 {
		if _, _, err := p.AppendNext(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Analyze(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.AppendNext(); err != nil {
		t.Fatal(err)
	}
	cached, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Fresh analysis of identical state: republish with every block dirty,
	// forcing the next epoch's Results to recompute everything.
	p.mu.Lock()
	p.dirty = allDirty()
	p.publishLocked()
	p.mu.Unlock()
	fresh, err := p.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, cached, fresh, "cache-vs-fresh")
}

// --- Checkpoint-growth benchmark (ISSUE 10 acceptance) ---
//
// The segmented-checkpoint claim is that snapshot cost is O(delta), not
// O(corpus): after the same held-out batch lands in a 1× and a 10× corpus,
// the next checkpoint writes only the chunks that batch dirtied, so its
// cost must stay roughly flat as the corpus grows. Each iteration restores
// the warmed corpus, attaches a fresh content store, takes one priming
// checkpoint (the full re-base — deliberately outside the timer), ingests
// the delta, and times only the delta checkpoint. The CI gate compares the
// 10× and 1× ns/op via checkpoint_growth_ratio in BENCH_incremental.json.
func BenchmarkIncremental_CheckpointGrowth(b *testing.B) {
	for _, size := range []struct {
		name   string
		prefix int
	}{{"1x", 100}, {"4x", 400}, {"10x", 998}} {
		b.Run("size="+size.name, func(b *testing.B) {
			st := growthSetup(b, size.prefix)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, err := castore.Open(filepath.Join(b.TempDir(), "store"), nil)
				if err != nil {
					b.Fatal(err)
				}
				eng, err := core.RestoreEngineWithStore(bytes.NewReader(st.snap), store)
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Snapshot(io.Discard); err != nil { // priming full re-base
					b.Fatal(err)
				}
				if _, err := eng.Ingest(st.delta); err != nil {
					b.Fatal(err)
				}
				runtime.GC()
				b.StartTimer()
				if err := eng.Snapshot(io.Discard); err != nil {
					b.Fatal(err)
				}
			}
			// After the loop: ResetTimer clears extra metrics reported
			// before it.
			b.ReportMetric(float64(len(st.delta.Entries)), "delta_entries")
		})
	}
}
