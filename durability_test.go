package malgraph

// Durability tests (ISSUE 6): recovery from last snapshot + WAL suffix must
// be bit-identical to the engine that never died. The crash matrix kills the
// pipeline at every journal record boundary (plus torn half-record tails),
// recovers a fresh pipeline from the surviving bytes, re-delivers the rest
// of the script, and requires the exact per-type edge sets and Results of
// the uninterrupted reference run. A second suite replays a shuffled
// external delivery from the journal alone and requires one-shot equality —
// the PR 2/3 equivalence contract extended across process death.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"malgraph/internal/collect"
	"malgraph/internal/reports"
	"malgraph/internal/wal"
	"malgraph/internal/xrand"
)

// journalBytes reads the raw journal file so the crash matrix can replant
// byte-exact prefixes of it.
func journalBytes(t *testing.T, dir string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// decoupledObservations round-trips observations through JSON — the same
// copy the HTTP inlet and the journal itself perform — so recovery
// pipelines never share artifact pointers with the reference world.
func decoupledObservations(t *testing.T, obs []collect.Observation) []collect.Observation {
	t.Helper()
	raw, err := json.Marshal(obs)
	if err != nil {
		t.Fatal(err)
	}
	var out []collect.Observation
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// deliveryScript is the fixed interleaving of feed and external ingests the
// crash matrix replays: step i produces journal record i+1. The same script
// runs against the reference pipeline and, suffix-wise, against every
// recovered pipeline — re-delivery after a crash is the client resuming
// from its last acknowledged batch.
func deliveryScript(p *Pipeline, obs []collect.Observation, reps []*reports.Report) []func() error {
	feedStep := func() error {
		_, ok, err := p.AppendNext()
		if err == nil && !ok {
			return fmt.Errorf("feed exhausted early")
		}
		return err
	}
	half := len(obs) / 2
	extStep := func(o []collect.Observation, r []*reports.Report) func() error {
		return func() error {
			_, _, err := p.AppendExternal(o, r)
			return err
		}
	}
	return []func() error{
		feedStep,
		extStep(obs[:half], reps[:1]),
		feedStep,
		extStep(obs[half:], reps[1:2]),
		feedStep,
		feedStep,
	}
}

// TestCrashRecoveryMatrixMatchesUninterrupted is the tentpole acceptance
// test: a journaled pipeline is killed after every record boundary (and at
// torn mid-record offsets), recovered from the latest snapshot at or below
// the kill point plus the surviving journal bytes, and driven through the
// remainder of the delivery script. Every recovery must land on the
// reference run's exact edge sets; clean-boundary kills must also match its
// full Results.
func TestCrashRecoveryMatrixMatchesUninterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.02
	cfg := Config{Scale: scale}
	const feedBatches = 4

	// Reference run: journaled, never killed, snapshots taken mid-stream so
	// later kill points recover from snapshot + suffix instead of a cold
	// journal-only replay.
	refDir := t.TempDir()
	pRef, err := NewStreamingPipeline(context.Background(), cfg, feedBatches)
	if err != nil {
		t.Fatal(err)
	}
	jRef, err := wal.Open(refDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	pRef.AttachJournal(jRef)

	obs := decoupledObservations(t, collect.ObservationsFromSources(pRef.World.Sources))
	_, reportCorpus := pRef.Source()
	if len(reportCorpus) < 2 {
		t.Fatalf("report corpus too small: %d", len(reportCorpus))
	}

	script := deliveryScript(pRef, obs, reportCorpus)
	records := len(script)
	sizes := make([]int64, records+1) // sizes[i] = journal bytes after i records
	snaps := map[uint64][]byte{}      // snapshot bytes keyed by AppliedSeq
	for i, step := range script {
		if err := step(); err != nil {
			t.Fatalf("reference step %d: %v", i+1, err)
		}
		sizes[i+1] = jRef.Size()
		if seq := pRef.LastSeq(); seq != uint64(i+1) {
			t.Fatalf("reference seq after step %d = %d", i+1, seq)
		}
		// Snapshot after records 2 and 4: kill points 0-1 recover cold,
		// 2-3 from snapshot@2 + suffix, 4-6 from snapshot@4 + suffix.
		if i+1 == 2 || i+1 == 4 {
			var buf bytes.Buffer
			if err := pRef.SnapshotEngine(&buf); err != nil {
				t.Fatal(err)
			}
			snaps[uint64(i+1)] = buf.Bytes()
		}
	}
	refRes, err := pRef.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := jRef.Close(); err != nil {
		t.Fatal(err)
	}
	full := journalBytes(t, refDir)
	if int64(len(full)) != sizes[records] {
		t.Fatalf("journal file %d bytes, log reports %d", len(full), sizes[records])
	}

	recoverAt := func(t *testing.T, cut int64, durable int) {
		t.Helper()
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.wal"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		p, err := NewStreamingPipeline(context.Background(), cfg, feedBatches)
		if err != nil {
			t.Fatal(err)
		}
		// Latest snapshot at or below the kill point, exactly as serve
		// picks its -snapshot file.
		var snapSeq uint64
		for seq := range snaps {
			if seq <= uint64(durable) && seq > snapSeq {
				snapSeq = seq
			}
		}
		if snapSeq > 0 {
			if err := p.RestoreEngine(bytes.NewReader(snaps[snapSeq])); err != nil {
				t.Fatalf("restore snapshot@%d: %v", snapSeq, err)
			}
			if p.LastSeq() != snapSeq {
				t.Fatalf("restored seq %d, want %d", p.LastSeq(), snapSeq)
			}
		}
		j, err := wal.Open(dir, nil)
		if err != nil {
			t.Fatalf("open truncated journal: %v", err)
		}
		defer j.Close()
		applied, err := p.ReplayJournal(j)
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		if want := durable - int(snapSeq); applied != want {
			t.Fatalf("replay applied %d records, want %d (snapshot@%d)", applied, want, snapSeq)
		}
		if p.LastSeq() != uint64(durable) {
			t.Fatalf("recovered seq %d, want %d", p.LastSeq(), durable)
		}
		p.AttachJournal(j)

		// Re-deliver everything past the last durable record — the loader
		// resuming from its last acknowledged sequence.
		for i := durable; i < records; i++ {
			if err := deliveryScript(p, obs, reportCorpus)[i](); err != nil {
				t.Fatalf("re-deliver step %d: %v", i+1, err)
			}
		}
		if p.LastSeq() != uint64(records) {
			t.Fatalf("final seq %d, want %d", p.LastSeq(), records)
		}
		assertEdgeSetsEqual(t, p.Graph, pRef.Graph, fmt.Sprintf("kill@%d", durable))
		if cut == sizes[durable] { // clean boundary: pin full Results too
			got, err := p.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, got, refRes, fmt.Sprintf("kill@%d", durable))
		}
	}

	for durable := 0; durable <= records; durable++ {
		t.Run(fmt.Sprintf("boundary=%d", durable), func(t *testing.T) {
			recoverAt(t, sizes[durable], durable)
		})
		// Torn tail: the crash landed mid-write of record durable+1. The
		// half-written record must be truncated away, recovering exactly
		// the durable prefix.
		if durable < records {
			t.Run(fmt.Sprintf("torn=%d", durable), func(t *testing.T) {
				recoverAt(t, sizes[durable]+(sizes[durable+1]-sizes[durable])/2, durable)
			})
		}
	}
}

// TestJournaledShuffledReplayMatchesOneShot delivers the corpus as shuffled
// external batches through a journaled pipeline, then recovers a fresh
// pipeline from the journal alone (no snapshot, total process loss) and
// requires one-shot-equal Results: replay is just another batch partition.
func TestJournaledShuffledReplayMatchesOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.02
	_, want := oneShot(t, scale)

	dir := t.TempDir()
	p1, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := wal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1.AttachJournal(j1)

	obs := decoupledObservations(t, collect.ObservationsFromSources(p1.World.Sources))
	_, reportCorpus := p1.Source()
	rng := xrand.New(6006)
	for i := len(obs) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		obs[i], obs[j] = obs[j], obs[i]
	}
	const k = 5
	for i := 0; i < k; i++ {
		lo, hi := i*len(obs)/k, (i+1)*len(obs)/k
		rlo, rhi := i*len(reportCorpus)/k, (i+1)*len(reportCorpus)/k
		if _, _, err := p1.AppendExternal(obs[lo:hi], reportCorpus[rlo:rhi]); err != nil {
			t.Fatalf("shuffled external batch %d: %v", i+1, err)
		}
	}
	liveRes, err := p1.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, liveRes, want, "shuffled external (pre-crash)")
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Total process loss: a fresh pipeline, the journal the only survivor.
	p2, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := wal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	applied, err := p2.ReplayJournal(j2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if applied != k {
		t.Fatalf("replay applied %d records, want %d", applied, k)
	}
	if p2.LastSeq() != uint64(k) {
		t.Fatalf("recovered seq %d, want %d", p2.LastSeq(), k)
	}
	got, err := p2.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	assertEdgeSetsEqual(t, p2.Graph, p1.Graph, "journal replay")
	assertResultsEqual(t, got, want, "journal replay vs one-shot")
}

// TestCheckpointConcurrentWithIngestLosesNothing pins the atomicity of
// Pipeline.Checkpoint: the journal truncation happens under the same lock
// that stamps the snapshot's AppliedSeq, so a batch journaled by a
// concurrent pusher can never land between the stamp and the truncate and
// be destroyed. Pushers hammer AppendExternal while a checkpointer loops
// as fast as it can; afterwards, recovery from the last checkpoint plus
// the surviving journal must reproduce every acknowledged batch.
func TestCheckpointConcurrentWithIngestLosesNothing(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.02
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "state.json")

	p1, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := wal.Open(filepath.Join(dir, "wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p1.AttachJournal(j1)

	obs := decoupledObservations(t, collect.ObservationsFromSources(p1.World.Sources))
	_, reportCorpus := p1.Source()

	// The test's persist: buffer the locked snapshot, then replace the file
	// whole — recovery below only ever reads a complete checkpoint.
	persist := func(snapshot func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := snapshot(&buf); err != nil {
			return err
		}
		return os.WriteFile(snapPath, buf.Bytes(), 0o644)
	}

	const pushers, perPusher = 4, 3
	records := pushers * perPusher
	stop := make(chan struct{})
	ckptDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				ckptDone <- nil
				return
			default:
			}
			if _, err := p1.Checkpoint(persist); err != nil {
				ckptDone <- err
				return
			}
		}
	}()
	var wg sync.WaitGroup
	fail := make(chan error, records)
	for g := 0; g < pushers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perPusher; i++ {
				b := g*perPusher + i
				lo, hi := b*len(obs)/records, (b+1)*len(obs)/records
				rlo, rhi := b*len(reportCorpus)/records, (b+1)*len(reportCorpus)/records
				if _, _, err := p1.AppendExternal(obs[lo:hi], reportCorpus[rlo:rhi]); err != nil {
					fail <- fmt.Errorf("pusher %d batch %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	if err := <-ckptDone; err != nil {
		t.Fatalf("checkpointer: %v", err)
	}
	close(fail)
	for err := range fail {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	finalSeq := p1.LastSeq()
	if finalSeq != uint64(records) {
		t.Fatalf("live seq %d, want %d", finalSeq, records)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// The crash: recover from the last checkpoint plus whatever the journal
	// still holds. Every acknowledged batch must be there.
	p2, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if snap, err := os.ReadFile(snapPath); err == nil {
		if err := p2.RestoreEngine(bytes.NewReader(snap)); err != nil {
			t.Fatalf("restore checkpoint: %v", err)
		}
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	j2, err := wal.Open(filepath.Join(dir, "wal"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if _, err := p2.ReplayJournal(j2); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if p2.LastSeq() != finalSeq {
		t.Fatalf("recovered seq %d, want %d — a checkpoint destroyed an acknowledged record", p2.LastSeq(), finalSeq)
	}
	assertEdgeSetsEqual(t, p2.Graph, p1.Graph, "checkpoint-under-ingest recovery")
}

// TestSnapshotStampExcludesJournaledButUnappliedRecord pins the lastSeq
// commit point: a record that reaches the journal but whose engine apply
// fails must not advance the pipeline's applied sequence — otherwise the
// next snapshot stamps AppliedSeq past the engine's real state and replay
// silently skips the record. The journal-succeeded/apply-failed state is
// entered directly (journalLocked without the commit), which is exactly
// what the append paths leave behind when the apply errors.
func TestSnapshotStampExcludesJournaledButUnappliedRecord(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.02
	const feedBatches = 2
	dir := t.TempDir()
	p1, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, feedBatches)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := wal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	p1.AttachJournal(j1)

	// Batch 1 lands normally.
	if _, ok, err := p1.AppendNext(); err != nil || !ok {
		t.Fatalf("first feed batch: ok=%v err=%v", ok, err)
	}
	if p1.LastSeq() != 1 {
		t.Fatalf("seq after first batch = %d, want 1", p1.LastSeq())
	}
	// Batch 2 reaches the journal, then its apply "fails".
	p1.mu.Lock()
	seq, err := p1.journalLocked(recFeed, feedRecord{Index: 1})
	p1.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("journaled seq %d, want 2", seq)
	}
	if got := p1.LastSeq(); got != 1 {
		t.Fatalf("lastSeq advanced to %d before the apply succeeded", got)
	}
	// A snapshot taken now must stamp only the applied record.
	var snap bytes.Buffer
	if err := p1.SnapshotEngine(&snap); err != nil {
		t.Fatal(err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash + recover from snapshot@1 + journal{1,2}: record 2 is above the
	// stamp and must be re-applied, not skipped.
	p2, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, feedBatches)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.RestoreEngine(&snap); err != nil {
		t.Fatal(err)
	}
	j2, err := wal.Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	applied, err := p2.ReplayJournal(j2)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if applied != 1 {
		t.Fatalf("replay applied %d records, want 1 (the journaled-but-unapplied batch)", applied)
	}
	if p2.LastSeq() != 2 {
		t.Fatalf("recovered seq %d, want 2", p2.LastSeq())
	}
	if pending := p2.PendingBatches(); pending != 0 {
		t.Fatalf("feed not drained after replay: %d pending", pending)
	}

	// The recovered engine equals an uninterrupted two-batch drain.
	ref, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, feedBatches)
	if err != nil {
		t.Fatal(err)
	}
	for ref.PendingBatches() > 0 {
		if _, _, err := ref.AppendNext(); err != nil {
			t.Fatal(err)
		}
	}
	assertEdgeSetsEqual(t, p2.Graph, ref.Graph, "journaled-but-unapplied replay")
}
