package malgraph

// Read/write isolation suite (ISSUE 7): concurrent readers hammer the
// epoch-published query surface — results, stats, node — while a writer
// streams shuffled batches into the same pipeline. Every response a reader
// observes must equal the corresponding batch-boundary state of an
// identical serial reference run (no torn graphs, no half-applied
// batches), and the epoch ID and durable sequence each reader observes
// must be monotone. CI runs this file under -race, where any copy-on-write
// violation between the ingest path and a published epoch is a hard error.

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/graph"
	"malgraph/internal/xrand"
)

// probeView is a recorded node query at one batch boundary.
type probeView struct {
	ok        bool
	node      graph.Node
	neighbors map[string][]string
}

// epochReference is the serial ground truth: for every epoch ID the
// concurrent run can publish, the pipeline shape and a set of probe-node
// views at that boundary.
type epochReference struct {
	stats  map[uint64]PipelineStats
	probes map[uint64]map[string]probeView
	ids    []string // probe node IDs
}

func (ref *epochReference) record(p *Pipeline) {
	ep := p.CurrentEpoch()
	ref.stats[ep.ID()] = ep.Stats()
	views := make(map[string]probeView, len(ref.ids))
	for _, id := range ref.ids {
		n, nb, ok := ep.Node(id)
		views[id] = probeView{ok: ok, node: n, neighbors: nb}
	}
	ref.probes[ep.ID()] = views
}

// shuffledBatches builds a streaming pipeline and a deterministic shuffled
// k-partition of its collected corpus. Two calls produce byte-identical
// worlds and partitions, so a serial and a concurrent run replay the same
// batch sequence.
func shuffledBatches(t *testing.T, scale float64, k int) (*Pipeline, []core.Batch) {
	t.Helper()
	p, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ds, reportCorpus := p.Source()
	entries := make([]*collect.Entry, len(ds.Entries))
	copy(entries, ds.Entries)
	rng := xrand.New(777)
	for i := len(entries) - 1; i > 0; i-- {
		j := int(rng.Uint64() % uint64(i+1))
		entries[i], entries[j] = entries[j], entries[i]
	}
	var batches []core.Batch
	for bi, cb := range collect.PartitionBatches(ds, entries, k) {
		b := core.Batch{Entries: cb.Entries, PerSource: cb.PerSource, Stats: cb.Stats, At: cb.At}
		lo, hi := bi*len(reportCorpus)/k, (bi+1)*len(reportCorpus)/k
		b.Reports = reportCorpus[lo:hi]
		batches = append(batches, b)
	}
	return p, batches
}

func TestEpochReadsDuringShuffledIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const (
		scale   = 0.05
		k       = 10
		readers = 4
	)

	// Serial reference run: replay the shuffled batches one by one and
	// record every batch-boundary epoch (keyed by epoch ID — construction
	// publishes 1, each append increments).
	refP, batches := shuffledBatches(t, scale, k)
	ref := &epochReference{
		stats:  make(map[uint64]PipelineStats),
		probes: make(map[uint64]map[string]probeView),
	}
	// Probe IDs: a deterministic spread of the final corpus, so some probes
	// flip from absent to present mid-run and carry growing neighbor lists.
	finalIDs := func() []string {
		tmp, tb := shuffledBatches(t, scale, k)
		for _, b := range tb {
			if _, err := tmp.Append(b); err != nil {
				t.Fatal(err)
			}
		}
		ids := tmp.Graph.G.NodeIDs()
		sort.Strings(ids)
		return ids
	}()
	if len(finalIDs) == 0 {
		t.Fatal("empty corpus")
	}
	for _, idx := range []int{0, len(finalIDs) / 2, len(finalIDs) - 1} {
		ref.ids = append(ref.ids, finalIDs[idx])
	}
	ref.record(refP)
	for bi, b := range batches {
		if _, err := refP.Append(b); err != nil {
			t.Fatalf("reference append %d: %v", bi, err)
		}
		ref.record(refP)
	}

	// Concurrent run: one writer streams the same batches while readers
	// hammer the query surface.
	p, batches2 := shuffledBatches(t, scale, k)
	var done atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, readers)
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			var lastID, lastSeq uint64
			iters := 0
			for !done.Load() || iters == 0 {
				iters++
				ep := p.CurrentEpoch()
				if ep.ID() < lastID {
					errc <- fmt.Errorf("reader %d: epoch went backwards: %d after %d", ri, ep.ID(), lastID)
					return
				}
				if ep.Seq() < lastSeq {
					errc <- fmt.Errorf("reader %d: seq went backwards: %d after %d", ri, ep.Seq(), lastSeq)
					return
				}
				lastID, lastSeq = ep.ID(), ep.Seq()
				want, ok := ref.stats[ep.ID()]
				if !ok {
					errc <- fmt.Errorf("reader %d: epoch %d is not a reference batch boundary", ri, ep.ID())
					return
				}
				if got := ep.Stats(); !reflect.DeepEqual(got, want) {
					errc <- fmt.Errorf("reader %d: epoch %d stats torn:\n got %+v\nwant %+v", ri, ep.ID(), got, want)
					return
				}
				for _, id := range ref.ids {
					n, nb, ok := ep.Node(id)
					wantView := ref.probes[ep.ID()][id]
					if ok != wantView.ok || !reflect.DeepEqual(n, wantView.node) || !reflect.DeepEqual(nb, wantView.neighbors) {
						errc <- fmt.Errorf("reader %d: epoch %d node %s torn: ok=%v n=%+v nb=%v, want ok=%v n=%+v nb=%v",
							ri, ep.ID(), id, ok, n, nb, wantView.ok, wantView.node, wantView.neighbors)
						return
					}
				}
				// Results are the expensive read; sample them. The scalar
				// graph-shape fields must match the same epoch's stats — a
				// mismatch means Analyze saw a graph from a different moment
				// than the epoch it was published with.
				if iters%8 == 0 {
					res, err := ep.Results()
					if err != nil {
						errc <- fmt.Errorf("reader %d: epoch %d results: %v", ri, ep.ID(), err)
						return
					}
					if res.GraphNodes != want.Nodes || res.GraphEdges != want.Edges ||
						res.TotalPackages != want.Entries || res.CrawledReports != want.Reports {
						errc <- fmt.Errorf("reader %d: epoch %d results torn: nodes=%d edges=%d pkgs=%d reports=%d, want %+v",
							ri, ep.ID(), res.GraphNodes, res.GraphEdges, res.TotalPackages, res.CrawledReports, want)
						return
					}
				}
			}
		}(ri)
	}
	for bi, b := range batches2 {
		if _, err := p.Append(b); err != nil {
			t.Fatalf("concurrent append %d: %v", bi, err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The drained concurrent pipeline must match the serial reference
	// exactly — shuffled, raced ingest converged to the same state.
	finalGot, finalWant := p.CurrentEpoch(), refP.CurrentEpoch()
	if !reflect.DeepEqual(finalGot.Stats(), finalWant.Stats()) {
		t.Errorf("final stats differ:\n got %+v\nwant %+v", finalGot.Stats(), finalWant.Stats())
	}
	assertEdgeSetsEqual(t, p.Graph, refP.Graph, "epoch-race final")
}
