package malgraph

// The Results type aggregates every table and figure of the paper's
// evaluation (§V–§VI) into one plain-data summary. Fields use only built-in
// types and local row structs so callers never import internal packages.

import (
	"fmt"
	"io"
	"sort"
)

// Results is the complete output of a pipeline run: one field (or slice of
// rows) per paper artifact, in paper order.
type Results struct {
	Seed  uint64
	Scale float64

	// Corpus shape (§II-B / Table I aggregates).
	TotalPackages int
	Available     int
	Missing       int
	TotalMR       float64

	// Crawl and graph shape.
	CrawledPages    int
	CrawledReports  int
	GraphNodes      int
	GraphEdges      int
	DuplicatedEdges int
	SimilarEdges    int
	DependencyEdges int
	CoexistingEdges int

	// RQ1 — Tables I, IV, V; Figs 6, 7, 8.
	SourceSizes   []SourceSizeRow
	OverlapNames  []string
	Overlap       [][]int
	MissingRates  []MissingRateRow
	OccurrenceCDF []OccurrenceRow
	Timeline      []TimelineRow
	MissingCauses MissingCausesRow

	// RQ2 — Table VI; Figs 9, 10; diversity.
	SimilarSubgraphs []SubgraphRow
	SimilarOps       OpsRow
	SimilarActive    ActiveRow
	Diversity        DiversityRow

	// RQ3 — Tables VII, VIII; Fig 11.
	DependencySubgraphs []SubgraphRow
	DependencyTargets   []DepTargetRow
	DepCores            int
	DepFronts           int
	DependencyActive    ActiveRow

	// RQ4 — Table IX; Figs 12, 13, 14.
	CoexistSubgraphs []SubgraphRow
	CoexistOps       OpsRow
	CoexistActive    ActiveRow
	IoCs             IoCRow
	TopDomains       []DomainRow

	// §VI-B — Table XI.
	Behaviors []BehaviorRow

	// §IV-A — controlled validation.
	Validation ValidationRow

	// §VI-A — Table X (empty unless Config.Detection).
	Detection []DetectionRow
}

// SourceSizeRow is one Table I row.
type SourceSizeRow struct {
	Source      string
	Unavailable int
	Available   int
}

// MissingRateRow is one Table V row.
type MissingRateRow struct {
	Source   string
	Missing  int
	Total    int
	LocalMR  float64
	GlobalMR float64
}

// OccurrenceRow is one Fig 6 curve summary.
type OccurrenceRow struct {
	Ecosystem string
	AtOne     float64
	AtTwo     float64
	AtThree   float64
	Max       float64
}

// TimelineRow is one Fig 7 bar.
type TimelineRow struct {
	Year    int
	All     int
	Missing int
}

// MissingCausesRow is the Fig 8 breakdown.
type MissingCausesRow struct {
	EarlyRelease     int
	ShortPersistence int
	Other            int
}

// SubgraphRow is one row of Tables VI, VII or IX.
type SubgraphRow struct {
	Ecosystem   string
	PkgNum      int
	SubgraphNum int
	AvgSize     float64
	LargestSize int
}

// OpsRow is the Fig 9 / Fig 12 operation distribution.
type OpsRow struct {
	CN, CV, CD, CDep, CC float64
	Transitions          int
	AvgChangedLines      float64
}

// ActiveRow summarises an active-period distribution (Figs 10, 11, 13).
type ActiveRow struct {
	Groups          int
	MeanDays        float64
	MedianDays      float64
	P80Days         float64
	Under15DaysFrac float64
	Under10DaysFrac float64
	Over60Days      int
}

// DiversityRow quantifies corpus diversity over similar-code families.
type DiversityRow struct {
	Packages          int
	Singletons        int
	Families          int
	EffectiveFamilies float64
	SimpsonIndex      float64
	Top5Share         float64
}

// DepTargetRow is one Table VIII entry.
type DepTargetRow struct {
	Ecosystem string
	Name      string
	Count     int
}

// IoCRow is the §V-D context accounting (Fig 14).
type IoCRow struct {
	UniqueURLs       int
	UniqueIPs        int
	PowerShell       int
	MaxSameIPReports int
}

// DomainRow is one Fig 14 top-domain bar.
type DomainRow struct {
	Domain string
	Count  int
}

// BehaviorRow is one Table XI row.
type BehaviorRow struct {
	Ecosystem string
	Size      int
	Behaviors []string
	Source    string
}

// ValidationRow is the §IV-A experiment summary.
type ValidationRow struct {
	Experiments  int
	SampleSize   int
	ScannerRate  float64
	VerifiedRate float64
}

// DetectionRow is one Table X row.
type DetectionRow struct {
	Algorithm     string
	AccWithout    float64
	AccWith       float64
	RecallWithout float64
	RecallWith    float64
}

func sortOccurrence(rows []OccurrenceRow) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Ecosystem < rows[j].Ecosystem })
}

// Render writes every artifact as a readable report, in paper order.
func (r *Results) Render(w io.Writer) {
	fmt.Fprintf(w, "MALGRAPH reproduction — seed %d, scale %.2f\n", r.Seed, r.Scale)
	fmt.Fprintf(w, "corpus: %d packages (%d available / %d missing), %d reports from %d crawled pages\n",
		r.TotalPackages, r.Available, r.Missing, r.CrawledReports, r.CrawledPages)
	fmt.Fprintf(w, "graph : %d nodes, %d edges (dup %d / sim %d / dep %d / coex %d)\n\n",
		r.GraphNodes, r.GraphEdges, r.DuplicatedEdges, r.SimilarEdges, r.DependencyEdges, r.CoexistingEdges)

	fmt.Fprintf(w, "== Table I — source and size ==\n")
	for _, s := range r.SourceSizes {
		fmt.Fprintf(w, "  %-18s unavailable %5d  available %5d\n", s.Source, s.Unavailable, s.Available)
	}

	fmt.Fprintf(w, "\n== Table IV — overlap matrix ==\n")
	for i, name := range r.OverlapNames {
		fmt.Fprintf(w, "  %-18s", name)
		for j := range r.OverlapNames {
			fmt.Fprintf(w, " %5d", r.Overlap[i][j])
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "\n== Table V — missing rates (total %.2f%%) ==\n", r.TotalMR*100)
	for _, m := range r.MissingRates {
		fmt.Fprintf(w, "  %-18s local %6.2f%%  global %6.2f%%  (%d/%d)\n",
			m.Source, m.LocalMR*100, m.GlobalMR*100, m.Missing, m.Total)
	}

	fmt.Fprintf(w, "\n== Fig 6 — occurrence CDF ==\n")
	for _, o := range r.OccurrenceCDF {
		fmt.Fprintf(w, "  %-8s P(1) %5.1f%%  P(<=2) %5.1f%%  P(<=3) %5.1f%%  max %.0f\n",
			o.Ecosystem, o.AtOne*100, o.AtTwo*100, o.AtThree*100, o.Max)
	}

	fmt.Fprintf(w, "\n== Fig 7 — release timeline ==\n")
	for _, b := range r.Timeline {
		fmt.Fprintf(w, "  %d  all %5d  missing %5d\n", b.Year, b.All, b.Missing)
	}

	fmt.Fprintf(w, "\n== Fig 8 — causes of unavailability ==\n")
	fmt.Fprintf(w, "  early release %d   short persistence %d   other %d\n",
		r.MissingCauses.EarlyRelease, r.MissingCauses.ShortPersistence, r.MissingCauses.Other)

	fmt.Fprintf(w, "\n== Table VI — similar subgraphs ==\n")
	renderSubgraphs(w, r.SimilarSubgraphs)
	fmt.Fprintf(w, "  diversity: %d families over %d pkgs (+%d singletons), effective %.1f, Simpson %.3f, top-5 share %.1f%%\n",
		r.Diversity.Families, r.Diversity.Packages, r.Diversity.Singletons,
		r.Diversity.EffectiveFamilies, r.Diversity.SimpsonIndex, r.Diversity.Top5Share*100)

	fmt.Fprintf(w, "\n== Fig 9 — operations in similar subgraphs ==\n")
	renderOps(w, r.SimilarOps)

	fmt.Fprintf(w, "\n== Fig 10 — active periods (similar) ==\n")
	renderActive(w, r.SimilarActive)

	fmt.Fprintf(w, "\n== Table VII — dependency subgraphs ==\n")
	renderSubgraphs(w, r.DependencySubgraphs)

	fmt.Fprintf(w, "\n== Table VIII — dependency reuse (%d cores hide %d fronts) ==\n", r.DepCores, r.DepFronts)
	for i, d := range r.DependencyTargets {
		if i >= 10 {
			fmt.Fprintf(w, "  … and %d more\n", len(r.DependencyTargets)-10)
			break
		}
		fmt.Fprintf(w, "  %-8s %-24s %d dependents\n", d.Ecosystem, d.Name, d.Count)
	}

	fmt.Fprintf(w, "\n== Fig 11 — active periods (dependency) ==\n")
	renderActive(w, r.DependencyActive)

	fmt.Fprintf(w, "\n== Table IX — co-existing subgraphs ==\n")
	renderSubgraphs(w, r.CoexistSubgraphs)

	fmt.Fprintf(w, "\n== Fig 12 — operations in co-existing subgraphs ==\n")
	renderOps(w, r.CoexistOps)

	fmt.Fprintf(w, "\n== Fig 13 — active periods (co-existing) ==\n")
	renderActive(w, r.CoexistActive)

	fmt.Fprintf(w, "\n== Fig 14 — IoCs ==\n")
	fmt.Fprintf(w, "  %d unique URLs, %d unique IPs, %d PowerShell, max same-IP reports %d\n",
		r.IoCs.UniqueURLs, r.IoCs.UniqueIPs, r.IoCs.PowerShell, r.IoCs.MaxSameIPReports)
	for i, d := range r.TopDomains {
		fmt.Fprintf(w, "  %2d. %-28s %d\n", i+1, d.Domain, d.Count)
	}

	fmt.Fprintf(w, "\n== Table X — detection with and without MALGRAPH ==\n")
	if len(r.Detection) == 0 {
		fmt.Fprintf(w, "  (skipped; enable Config.Detection)\n")
	}
	for _, d := range r.Detection {
		fmt.Fprintf(w, "  %-4s acc %.3f→%.3f   recall %.3f→%.3f\n",
			d.Algorithm, d.AccWithout, d.AccWith, d.RecallWithout, d.RecallWith)
	}

	fmt.Fprintf(w, "\n== Table XI — behaviours of the largest similar groups ==\n")
	for _, b := range r.Behaviors {
		fmt.Fprintf(w, "  %-8s %5d pkgs  [%s]  %v\n", b.Ecosystem, b.Size, b.Source, b.Behaviors)
	}

	fmt.Fprintf(w, "\n== §IV-A — controlled validation ==\n")
	fmt.Fprintf(w, "  %d×%d samples, scanner %.1f%%, verified %.1f%%\n",
		r.Validation.Experiments, r.Validation.SampleSize,
		r.Validation.ScannerRate*100, r.Validation.VerifiedRate*100)
}

func renderSubgraphs(w io.Writer, rows []SubgraphRow) {
	for _, s := range rows {
		fmt.Fprintf(w, "  %-8s groups %4d  pkgs %5d  avg %7.2f  max %5d\n",
			s.Ecosystem, s.SubgraphNum, s.PkgNum, s.AvgSize, s.LargestSize)
	}
}

func renderOps(w io.Writer, d OpsRow) {
	fmt.Fprintf(w, "  CN %.2f%%  CV %.2f%%  CD %.2f%%  CDep %.2f%%  CC %.2f%%  (%d transitions, %.2f lines/CC)\n",
		d.CN*100, d.CV*100, d.CD*100, d.CDep*100, d.CC*100, d.Transitions, d.AvgChangedLines)
}

func renderActive(w io.Writer, a ActiveRow) {
	fmt.Fprintf(w, "  %d groups, mean %.2fd, median %.2fd, P80 %.2fd, <=15d %.1f%%, <=10d %.1f%%, >60d %d\n",
		a.Groups, a.MeanDays, a.MedianDays, a.P80Days,
		a.Under15DaysFrac*100, a.Under10DaysFrac*100, a.Over60Days)
}
