#!/usr/bin/env bash
# lint.sh — MALGRAPH's tier-1 correctness-tooling gate: go vet plus the
# repo-specific malgraphlint passes (maprange, nondeterm, epochsafe,
# lockguard — see internal/analyzers). The tree must come up clean: every
# finding is either fixed or waived in the source with a reasoned
# //malgraph:<kind>-ok directive, and an unreasoned or stale waiver is
# itself a finding.
#
# Usage:
#   scripts/lint.sh [packages ...]          # default: ./...
#
# vet runs its full default analyzer suite (copylocks, loopclosure, atomic,
# printf, ...). The x/tools extra passes (nilness, shadow, unusedwrite) do
# not ship with cmd/vet in this toolchain and the build environment is
# offline; when their standalone binaries are on PATH they are run too, so
# the gate tightens automatically on toolchains that have them.
set -euo pipefail
cd "$(dirname "$0")/.."

pkgs=("$@")
if [ ${#pkgs[@]} -eq 0 ]; then
  pkgs=(./...)
fi

echo "== go vet (default analyzer suite)"
go vet "${pkgs[@]}"

for extra in nilness shadow unusedwrite; do
  if command -v "$extra" >/dev/null 2>&1; then
    echo "== go vet -vettool=$extra"
    go vet -vettool="$(command -v "$extra")" "${pkgs[@]}"
  fi
done

echo "== malgraphlint"
# Same build cache as the vet run above (go list -export reuses it), so the
# second pass costs package loading, not a recompile.
go run ./cmd/malgraphlint "${pkgs[@]}"

echo "== waiver-free zone (internal/castore)"
# The content-addressed store is new code with no legacy debt: it must pass
# every malgraphlint analyzer with ZERO //malgraph:<kind>-ok waivers, so its
# lockguard `guarded by mu` annotations are machine-checked facts rather
# than waived claims. Growing a waiver here is a lint failure by design —
# fix the code instead.
if grep -rn 'malgraph:[a-z]*-ok' internal/castore/ 2>/dev/null; then
  echo "internal/castore must stay waiver-free (fix the finding, don't waive it)"
  exit 1
fi

echo "lint clean"
