#!/usr/bin/env bash
# bench.sh — run the headline MALGRAPH benchmarks and emit machine-readable
# perf records, so every PR leaves a comparable perf data point behind.
#
# Usage:
#   scripts/bench.sh [output-dir]           # default output-dir: .
#
# Environment:
#   MALGRAPH_BENCH_SCALE   corpus scale (default 0.05; 1.0 ≈ paper size)
#   BENCH_TIME             -benchtime value (default 3x; use 1x for CI smoke)
#
# Outputs:
#   BENCH_serve.json        BenchmarkServe_ReadsDuringIngest (epoch read
#                           p50/p99 idle vs under sustained ingest+restore
#                           pressure, plus their p99 ratio — the lock-free
#                           read contract; CI gates ratio ≤ 2× with a 2ms
#                           absolute escape hatch) and
#                           BenchmarkIngest_ShardedSpeedup (the same batch
#                           sequence ingested at GOMAXPROCS=1 vs all cores;
#                           CI gates the speedup ≥ 0.8, a floor single-core
#                           runners still clear)
#   BENCH_clustering.json   BenchmarkTable6_ClusteringStage (§III-B hot path)
#   BENCH_pipeline.json     BenchmarkPipeline_EndToEnd (whole-corpus envelope)
#   BENCH_incremental.json  BenchmarkIncremental_{Append,FullRebuild} plus the
#                           append-vs-rebuild speedup (the streaming engine's
#                           headline: a 1% delta must stay ≥10× cheaper),
#                           BenchmarkIncremental_AppendGrowth records (fixed
#                           ≈1% append at 1×/4×/10× corpus) with the LSH
#                           recluster-scope metrics and the 10×/1× growth
#                           ratio — appends must stay flat as the corpus grows
#                           — and BenchmarkIncremental_ReportAppendGrowth
#                           records (fixed wanted-package delta at 1×/4×/10×
#                           REPORT corpus) with the report-join scope metrics
#                           (reports_rejoined, coexisting_edges_replaced,
#                           coexisting_rebuilt) and their own 10×/1× ratio —
#                           a wanted arrival must stay flat as reports accrue —
#                           BenchmarkIncremental_CheckpointGrowth records (the
#                           same ingested delta checkpointed through the
#                           content-addressed store at 1×/4×/10× corpus) with
#                           the checkpoint_growth_ratio (10×/1× ns): segmented
#                           checkpoints must cost O(delta), not O(corpus) —
#                           and BenchmarkIncremental_JournaledAppend (the same
#                           append with a fsync'd WAL record in the measured
#                           op) with the journaled/in-memory overhead ratio:
#                           durability must cost one fsync, not a second
#                           ingest (CI gates ≤ 1.5×, computed from the
#                           minimum per-iteration WAL cost so ambient disk
#                           load cannot flake the gate)
#
# Each record carries ns/op, B/op, allocs/op and the benchmark's shape
# metrics (edge/package counts), keyed by scale, so future sessions can plot
# the perf trajectory without re-parsing go test output.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${1:-.}"
mkdir -p "$OUT_DIR"
SCALE="${MALGRAPH_BENCH_SCALE:-0.05}"
TIME="${BENCH_TIME:-3x}"
STAMP="$(date -u +%Y-%m-%dT%H:%M:%SZ)"

# The append/journaled-append pair runs at its own (higher) iteration count:
# the CI gate on their ratio is tight (1.5×) and a single-iteration sample of
# two ~1ms ops is too noisy to gate on. 20 iterations settle the per-append
# fsync latency near its mean.
PAIR_TIME="${BENCH_PAIR_TIME:-20x}"

# The serve benches sample their own latency distributions (hundreds of
# reads per iteration) and the speedup bench times two full ingests per
# iteration, so one iteration is already a settled measurement.
SERVE_TIME="${BENCH_SERVE_TIME:-1x}"

{
  MALGRAPH_BENCH_SCALE="$SCALE" go test -run '^$' \
      -bench 'BenchmarkTable6_ClusteringStage$|BenchmarkPipeline_EndToEnd$|BenchmarkIncremental_FullRebuild$|BenchmarkIncremental_AppendGrowth$|BenchmarkIncremental_ReportAppendGrowth$|BenchmarkIncremental_CheckpointGrowth$' \
      -benchmem -benchtime "$TIME" .
  MALGRAPH_BENCH_SCALE="$SCALE" go test -run '^$' \
      -bench 'BenchmarkIncremental_Append$|BenchmarkIncremental_JournaledAppend$' \
      -benchmem -benchtime "$PAIR_TIME" .
  MALGRAPH_BENCH_SCALE="$SCALE" go test -run '^$' \
      -bench 'BenchmarkServe_ReadsDuringIngest$|BenchmarkIngest_ShardedSpeedup$' \
      -benchmem -benchtime "$SERVE_TIME" .
} |
awk -v scale="$SCALE" -v stamp="$STAMP" -v dir="$OUT_DIR" '
  function record(name,    line, metrics, i, val, unit) {
    metrics = ""
    line = sprintf("{\"benchmark\":\"%s\",\"generated_utc\":\"%s\",\"scale\":%s,\"iterations\":%s",
                   name, stamp, scale, $2)
    for (i = 3; i < NF; i += 2) {
      val = $i; unit = $(i + 1)
      if (unit == "ns/op")          line = line sprintf(",\"ns_per_op\":%s", val)
      else if (unit == "B/op")      line = line sprintf(",\"bytes_per_op\":%s", val)
      else if (unit == "allocs/op") line = line sprintf(",\"allocs_per_op\":%s", val)
      else metrics = metrics sprintf("%s\"%s\":%s", (metrics == "" ? "" : ","), unit, val)
    }
    return line sprintf(",\"metrics\":{%s}}", metrics)
  }
  /^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
    out = ""
    if (name == "BenchmarkTable6_ClusteringStage") out = dir "/BENCH_clustering.json"
    if (name == "BenchmarkPipeline_EndToEnd")      out = dir "/BENCH_pipeline.json"
    for (i = 3; i < NF; i += 2) if ($(i + 1) == "ns/op") ns = $i
    if (name == "BenchmarkIncremental_Append")          { append_ns = ns;  append_rec = record(name) }
    if (name == "BenchmarkIncremental_JournaledAppend") {
      wal_ns = ns; wal_rec = record(name)
      for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "wal_append_ns") wal_component_ns = $i
        if ($(i + 1) == "wal_min_ns")    wal_min_ns = $i
      }
    }
    if (name == "BenchmarkIncremental_FullRebuild")     { rebuild_ns = ns; rebuild_rec = record(name) }
    if (name == "BenchmarkIncremental_AppendGrowth/size=1x")  { g1_ns = ns;  g1_rec = record(name) }
    if (name == "BenchmarkIncremental_AppendGrowth/size=4x")  { g4_ns = ns;  g4_rec = record(name) }
    if (name == "BenchmarkIncremental_AppendGrowth/size=10x") { g10_ns = ns; g10_rec = record(name) }
    if (name == "BenchmarkIncremental_ReportAppendGrowth/size=1x")  { r1_ns = ns;  r1_rec = record(name) }
    if (name == "BenchmarkIncremental_ReportAppendGrowth/size=4x")  { r4_ns = ns;  r4_rec = record(name) }
    if (name == "BenchmarkIncremental_ReportAppendGrowth/size=10x") { r10_ns = ns; r10_rec = record(name) }
    if (name == "BenchmarkIncremental_CheckpointGrowth/size=1x")  { c1_ns = ns;  c1_rec = record(name) }
    if (name == "BenchmarkIncremental_CheckpointGrowth/size=4x")  { c4_ns = ns;  c4_rec = record(name) }
    if (name == "BenchmarkIncremental_CheckpointGrowth/size=10x") { c10_ns = ns; c10_rec = record(name) }
    if (name == "BenchmarkServe_ReadsDuringIngest") {
      serve_rec = record(name)
      for (i = 3; i < NF; i += 2) {
        if ($(i + 1) == "read_idle_p99_ns")   read_idle99 = $i
        if ($(i + 1) == "read_ingest_p99_ns") read_busy99 = $i
        if ($(i + 1) == "read_p99_ratio")     read_ratio = $i
      }
    }
    if (name == "BenchmarkIngest_ShardedSpeedup") {
      shard_rec = record(name)
      for (i = 3; i < NF; i += 2) if ($(i + 1) == "sharded_speedup") shard_speedup = $i
    }
    if (out == "") next
    line = record(name)
    print line > out
    close(out)
    print "wrote " out ": " line
  }
  END {
    if (append_ns != "" && rebuild_ns != "") {
      out = dir "/BENCH_incremental.json"
      line = sprintf("{\"generated_utc\":\"%s\",\"scale\":%s,\"append_ns_per_op\":%s,\"full_rebuild_ns_per_op\":%s,\"append_speedup\":%.2f,\"append\":%s,\"full_rebuild\":%s",
                     stamp, scale, append_ns, rebuild_ns, rebuild_ns / append_ns, append_rec, rebuild_rec)
      if (g1_ns != "" && g10_ns != "") {
        line = line sprintf(",\"append_growth_10x_vs_1x\":%.2f,\"append_growth\":{\"x1\":%s,\"x4\":%s,\"x10\":%s}",
                            g10_ns / g1_ns, g1_rec, g4_rec, g10_rec)
      }
      if (r1_ns != "" && r10_ns != "") {
        line = line sprintf(",\"report_append_growth_10x_vs_1x\":%.2f,\"report_append_growth\":{\"x1\":%s,\"x4\":%s,\"x10\":%s}",
                            r10_ns / r1_ns, r1_rec, r4_rec, r10_rec)
      }
      if (c1_ns != "" && c10_ns != "") {
        line = line sprintf(",\"checkpoint_growth_ratio\":%.2f,\"checkpoint_growth\":{\"x1\":%s,\"x4\":%s,\"x10\":%s}",
                            c10_ns / c1_ns, c1_rec, c4_rec, c10_rec)
      }
      if (wal_ns != "" && wal_component_ns != "" && wal_min_ns != "" && wal_ns > wal_component_ns) {
        # Overhead ratio from one run: the journaled op minus its timed WAL
        # component IS the same iterations in-memory append time, so the
        # ingest noise cancels instead of comparing two separately noisy
        # benchmarks. The WAL side of the gated ratio uses the per-iteration
        # MINIMUM fsync cost: on shared infrastructure the mean swings
        # severalfold with ambient disk load, but the minimum is the code
        # durability tax itself — a structural regression (second fsync,
        # bloated record) raises every iteration including the quietest one.
        compute_ns = wal_ns - wal_component_ns
        line = line sprintf(",\"journaled_append_ns_per_op\":%s,\"wal_append_ns_per_op\":%s,\"wal_min_ns\":%s,\"journaled_append_overhead\":%.2f,\"journaled_append_overhead_mean\":%.2f,\"journaled_append\":%s",
                            wal_ns, wal_component_ns, wal_min_ns,
                            (compute_ns + wal_min_ns) / compute_ns, wal_ns / compute_ns, wal_rec)
      }
      line = line "}"
      print line > out
      close(out)
      print "wrote " out ": " line
    }
    if (serve_rec != "" && shard_rec != "") {
      out = dir "/BENCH_serve.json"
      line = sprintf("{\"generated_utc\":\"%s\",\"scale\":%s,\"read_idle_p99_ns\":%s,\"read_ingest_p99_ns\":%s,\"read_p99_ratio\":%s,\"sharded_speedup\":%s,\"reads_during_ingest\":%s,\"sharded_ingest\":%s}",
                     stamp, scale, read_idle99, read_busy99, read_ratio, shard_speedup, serve_rec, shard_rec)
      print line > out
      close(out)
      print "wrote " out ": " line
    }
  }'
