package malgraph

// Epoch-published reads. Every pipeline mutation (feed append, external
// ingest, restore, journal replay) ends by publishing an immutable Epoch —
// a consistent batch-boundary view of the corpus (graph clone, dataset
// view, precomputed shape stats, durable sequence) — through an
// atomic.Pointer. Readers (Analyze, Stats, Node, the serve query handlers,
// snapshot serving) load the current epoch lock-free: the query path never
// touches the ingest mutex, so reads do not stall behind a slow batch and
// a long analysis never stalls the loader.
//
// Results stay incremental across epochs the way they were incremental
// under the old single-lock cache: each epoch carries the last *computed*
// Results as its base plus the dirty-block set accumulated since that
// computation, so Epoch.Results recomputes only the invalidated RQ blocks.
// Epochs whose dirty set is empty reuse the base verbatim — same pointer,
// same results ID, same ETag — which is what lets /api/v1/results answer
// 304 Not-Modified without re-serializing anything.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"malgraph/internal/analysis"
	"malgraph/internal/behavior"
	"malgraph/internal/codegen"
	"malgraph/internal/collect"
	"malgraph/internal/core"
	"malgraph/internal/crawler"
	"malgraph/internal/detect"
	"malgraph/internal/ecosys"
	"malgraph/internal/graph"
	"malgraph/internal/parallel"
	"malgraph/internal/world"
	"malgraph/internal/xrand"
)

// Epoch is one published batch-boundary state. All fields are written
// before the epoch is stored in the pipeline's atomic pointer and never
// mutated afterwards (the lazy caches synchronize through sync.Once), so
// any number of readers share one epoch without locks.
type Epoch struct {
	id      uint64 // monotone publish counter
	seq     uint64 // durable sequence of the last applied ingest
	pending int    // feed batches not yet ingested at publish time

	graph *core.MalGraph // immutable view (core.Engine.View)
	stats PipelineStats  // precomputed shape summary

	cfg   Config
	world *world.World
	crawl crawler.Result

	// Incremental-results chain: base is the most recently computed Results
	// at publish time (nil only before the first computation), baseID the
	// epoch ID it was computed for, dirty the blocks invalidated since.
	base   *Results
	baseID uint64
	dirty  dirtyBlocks

	// resultsID identifies the Results this epoch serves: baseID when the
	// dirty set is empty (the base is reused verbatim), else this epoch's
	// own ID. It is the ETag basis — unchanged results keep their tag.
	resultsID uint64

	once       sync.Once
	results    atomic.Pointer[Results]
	resultsErr error

	// json caches the serialized Results. The cache is shared along a
	// clean-epoch chain (same resultsID ⇒ same *jsonCache), so unchanged
	// results are marshaled at most once however many epochs reuse them.
	json *jsonCache

	// Snapshot serving: the first GET in an epoch pays one engine snapshot
	// (under the ingest lock, at whatever batch boundary the engine has
	// reached by then); later GETs in the same epoch serve the bytes
	// lock-free.
	p         *Pipeline
	snapOnce  sync.Once
	snapBytes []byte
	snapErr   error
}

type jsonCache struct {
	once  sync.Once
	bytes []byte
	err   error
}

// ID returns the epoch's monotone publish counter.
func (ep *Epoch) ID() uint64 { return ep.id }

// Seq returns the durable ingest sequence the epoch reflects.
func (ep *Epoch) Seq() uint64 { return ep.seq }

// Stats returns the precomputed pipeline shape summary.
func (ep *Epoch) Stats() PipelineStats { return ep.stats }

// ETag is the HTTP entity tag of this epoch's Results. Epochs that reuse
// an earlier computation verbatim carry that computation's tag, so a
// conditional GET revalidates across no-op publishes.
func (ep *Epoch) ETag() string { return fmt.Sprintf("W/\"epoch-%d\"", ep.resultsID) }

// Node resolves one graph node and its sorted per-type neighbors against
// the epoch's graph view.
func (ep *Epoch) Node(id string) (graph.Node, map[string][]string, bool) {
	n, ok := ep.graph.G.Node(id)
	if !ok {
		return graph.Node{}, nil, false
	}
	neighbors := make(map[string][]string)
	for _, et := range graph.EdgeTypes() {
		if nb := ep.graph.G.Neighbors(id, et); len(nb) > 0 {
			neighbors[et.String()] = nb
		}
	}
	return n, neighbors, true
}

// Results computes (once) and returns the epoch's analysis results. Only
// the blocks the epoch's dirty set names are recomputed; the rest reuse
// the base computation.
func (ep *Epoch) Results() (*Results, error) {
	ep.once.Do(func() {
		if ep.dirty == (dirtyBlocks{}) && ep.base != nil {
			ep.results.Store(ep.base)
			return
		}
		r, err := computeResults(ep)
		if err != nil {
			ep.resultsErr = err
			return
		}
		ep.results.Store(r)
	})
	if ep.resultsErr != nil {
		return nil, ep.resultsErr
	}
	return ep.results.Load(), nil
}

// ResultsJSON returns the serialized Results, marshaling at most once per
// distinct results ID (clean epochs share the cache with the epoch that
// computed it).
func (ep *Epoch) ResultsJSON() ([]byte, error) {
	ep.json.once.Do(func() {
		r, err := ep.Results()
		if err != nil {
			ep.json.err = err
			return
		}
		b, err := json.Marshal(r)
		if err != nil {
			ep.json.err = err
			return
		}
		ep.json.bytes = append(b, '\n')
	})
	return ep.json.bytes, ep.json.err
}

// CurrentEpoch returns the most recently published epoch. Pipelines are
// published at construction, so the pointer is never nil.
func (p *Pipeline) CurrentEpoch() *Epoch {
	return p.epoch.Load()
}

// SnapshotCached writes an engine checkpoint, serving the current epoch's
// cached bytes when it has them: the first request per epoch snapshots the
// engine (under the ingest lock), every later request in the same epoch is
// lock-free. The bytes are always a complete batch-boundary checkpoint at
// least as new as the epoch.
func (p *Pipeline) SnapshotCached(w io.Writer) error {
	ep := p.CurrentEpoch()
	ep.snapOnce.Do(func() {
		var buf bytes.Buffer
		if err := p.SnapshotEngine(&buf); err != nil {
			ep.snapErr = err
			return
		}
		ep.snapBytes = buf.Bytes()
	})
	if ep.snapErr != nil {
		return ep.snapErr
	}
	_, err := w.Write(ep.snapBytes)
	return err
}

// publishLocked cuts a new epoch from the pipeline's current state and
// stores it. Callers hold p.mu. Each public mutator publishes exactly once
// on exit — a multi-batch drain clones the graph once, not per batch.
func (p *Pipeline) publishLocked() {
	prev := p.epoch.Load()
	p.epochID++
	ep := &Epoch{
		id:      p.epochID,
		seq:     p.lastSeq,
		pending: len(p.feed) - p.fed,
		graph:   p.Engine.View(),
		cfg:     p.Config,
		world:   p.World,
		crawl:   p.Crawl,
		p:       p,
	}
	ep.stats = shapeStats(ep.graph, ep.pending)
	dirt := p.dirty
	p.dirty = dirtyBlocks{}
	switch {
	case prev == nil:
		// First publish: everything must compute.
		ep.dirty = allDirty()
	case prev.results.Load() != nil:
		// The previous epoch's results were computed (or reused): they are
		// the freshest base, invalidated only by what landed since.
		ep.base = prev.results.Load()
		ep.baseID = prev.resultsID
		ep.dirty = dirt
	default:
		// Nobody computed the previous epoch's results: inherit its base
		// and fold this publish's dirt into its outstanding dirt.
		ep.base = prev.base
		ep.baseID = prev.baseID
		ep.dirty = prev.dirty.union(dirt)
	}
	if ep.dirty == (dirtyBlocks{}) && ep.base != nil {
		ep.resultsID = ep.baseID
		ep.json = prev.json
	} else {
		ep.resultsID = ep.id
		ep.json = &jsonCache{}
	}
	p.epoch.Store(ep)
}

func (d dirtyBlocks) union(o dirtyBlocks) dirtyBlocks {
	return dirtyBlocks{
		rq1:        d.rq1 || o.rq1,
		rq2:        d.rq2 || o.rq2,
		rq3:        d.rq3 || o.rq3,
		rq4:        d.rq4 || o.rq4,
		behaviors:  d.behaviors || o.behaviors,
		validation: d.validation || o.validation,
		detection:  d.detection || o.detection,
	}
}

// shapeStats summarizes a graph view (the former Pipeline.Stats body,
// evaluated once at publish time instead of per query under the lock).
func shapeStats(mg *core.MalGraph, pending int) PipelineStats {
	st := PipelineStats{
		Entries:        len(mg.Dataset.Entries),
		Available:      len(mg.Dataset.Available()),
		MissingRate:    mg.Dataset.TotalMR(),
		Reports:        len(mg.Reports),
		Nodes:          mg.G.NodeCount(),
		Edges:          mg.G.EdgeCount(),
		EdgesByType:    make(map[string]int, 4),
		PendingBatches: pending,
	}
	for _, et := range graph.EdgeTypes() {
		st.EdgesByType[et.String()] = mg.G.EdgeCount(et)
	}
	return st
}

// computeResults is the analysis body behind Epoch.Results: the former
// Pipeline.Analyze, evaluated against the epoch's immutable view instead
// of the live pipeline state.
func computeResults(ep *Epoch) (*Results, error) {
	dataset, reportCorpus := ep.graph.Dataset, ep.graph.Reports
	dirty := ep.dirty
	if ep.base == nil {
		dirty = allDirty()
	}
	r := &Results{
		Seed:            ep.cfg.Seed,
		Scale:           ep.cfg.Scale,
		TotalPackages:   len(dataset.Entries),
		Available:       len(dataset.Available()),
		Missing:         len(dataset.MissingEntries()),
		TotalMR:         dataset.TotalMR(),
		CrawledPages:    ep.crawl.Fetched,
		CrawledReports:  len(reportCorpus),
		GraphNodes:      ep.graph.G.NodeCount(),
		GraphEdges:      ep.graph.G.EdgeCount(),
		DuplicatedEdges: ep.graph.G.EdgeCount(graph.Duplicated),
		SimilarEdges:    ep.graph.G.EdgeCount(graph.Similar),
		DependencyEdges: ep.graph.G.EdgeCount(graph.Dependency),
		CoexistingEdges: ep.graph.G.EdgeCount(graph.Coexisting),
	}

	// The RQ blocks read the epoch's immutable products (dataset, graph,
	// reports) and write disjoint Results fields, so they run concurrently;
	// every analysis is itself deterministic, making the merged Results
	// identical to a sequential pass.
	rq1 := func() error {
		for _, row := range analysis.SourceSizes(dataset) {
			r.SourceSizes = append(r.SourceSizes, SourceSizeRow{
				Source: row.Source.String(), Unavailable: row.Unavailable, Available: row.Available,
			})
		}
		overlap := analysis.Overlap(dataset)
		for _, id := range overlap.IDs {
			r.OverlapNames = append(r.OverlapNames, id.String())
		}
		r.Overlap = overlap.Matrix
		rows, total := analysis.MissingRates(dataset)
		r.TotalMR = total
		for _, row := range rows {
			r.MissingRates = append(r.MissingRates, MissingRateRow{
				Source: row.Source.String(), Missing: row.Missing, Total: row.Total,
				LocalMR: row.LocalMR, GlobalMR: row.GlobalMR,
			})
		}
		for eco, cdf := range analysis.OccurrenceCDF(dataset) {
			r.OccurrenceCDF = append(r.OccurrenceCDF, OccurrenceRow{
				Ecosystem: eco.String(),
				AtOne:     cdf.At(1), AtTwo: cdf.At(2), AtThree: cdf.At(3), Max: cdf.Quantile(1),
			})
		}
		sortOccurrence(r.OccurrenceCDF)
		for _, b := range analysis.Timeline(dataset) {
			r.Timeline = append(r.Timeline, TimelineRow{Year: b.Year, All: b.All, Missing: b.Missing})
		}
		causes := analysis.ClassifyMissing(dataset, ep.world.Fleet)
		r.MissingCauses = MissingCausesRow{
			EarlyRelease: causes.EarlyRelease, ShortPersistence: causes.ShortPersistence, Other: causes.Other,
		}
		return nil
	}

	rq2 := func() error {
		r.SimilarSubgraphs = subgraphRows(analysis.SubgraphStatsFor(ep.graph, graph.Similar))
		r.SimilarOps = opsRow(analysis.Operations(ep.graph, graph.Similar))
		r.SimilarActive = activeRow(analysis.ActivePeriods(ep.graph, graph.Similar))
		div := analysis.Diversity(ep.graph)
		r.Diversity = DiversityRow{
			Packages: div.Packages, Singletons: div.Singletons, Families: div.Families,
			EffectiveFamilies: div.EffectiveFamilies, SimpsonIndex: div.SimpsonIndex,
			Top5Share: div.Top5Share,
		}
		return nil
	}

	rq3 := func() error {
		r.DependencySubgraphs = subgraphRows(analysis.SubgraphStatsFor(ep.graph, graph.Dependency))
		for _, d := range analysis.TopDependencyTargets(ep.graph, 2) {
			r.DependencyTargets = append(r.DependencyTargets, DepTargetRow{
				Ecosystem: d.Eco.String(), Name: d.Name, Count: d.Count,
			})
		}
		cores, fronts := analysis.DependencyReuse(ep.graph, 3)
		r.DepCores, r.DepFronts = cores, fronts
		r.DependencyActive = activeRow(analysis.ActivePeriods(ep.graph, graph.Dependency))
		return nil
	}

	rq4 := func() error {
		r.CoexistSubgraphs = subgraphRows(analysis.SubgraphStatsFor(ep.graph, graph.Coexisting))
		r.CoexistOps = opsRow(analysis.Operations(ep.graph, graph.Coexisting))
		r.CoexistActive = activeRow(analysis.ActivePeriods(ep.graph, graph.Coexisting))
		iocs := analysis.IoCs(reportCorpus, 10)
		r.IoCs = IoCRow{
			UniqueURLs: iocs.UniqueURLs, UniqueIPs: iocs.UniqueIPs,
			PowerShell: iocs.PowerShell, MaxSameIPReports: iocs.MaxSameIPReports,
		}
		for _, d := range iocs.TopDomains {
			r.TopDomains = append(r.TopDomains, DomainRow{Domain: d.Domain, Count: d.Count})
		}
		return nil
	}

	// §VI-B — Table XI.
	behaviors := func() error {
		for _, row := range behavior.TableXI(ep.graph, ep.cfg.MinBehaviorGroup) {
			r.Behaviors = append(r.Behaviors, BehaviorRow{
				Ecosystem: row.Eco.String(), Size: row.Size,
				Behaviors: row.Behaviors, Source: row.Source,
			})
		}
		return nil
	}

	// §IV-A — controlled validation experiment (own derived RNG stream).
	validation := func() error {
		r.Validation = validationOf(ep.cfg, ep.world, dataset)
		return nil
	}

	// Run only the invalidated blocks; serve the rest from the base.
	tasks := make([]func() error, 0, 6)
	for _, blk := range []struct {
		dirty bool
		run   func() error
		reuse func(from *Results)
	}{
		{dirty.rq1, rq1, func(c *Results) {
			r.SourceSizes, r.OverlapNames, r.Overlap = c.SourceSizes, c.OverlapNames, c.Overlap
			r.MissingRates, r.OccurrenceCDF, r.Timeline = c.MissingRates, c.OccurrenceCDF, c.Timeline
			r.MissingCauses = c.MissingCauses
		}},
		{dirty.rq2, rq2, func(c *Results) {
			r.SimilarSubgraphs, r.SimilarOps = c.SimilarSubgraphs, c.SimilarOps
			r.SimilarActive, r.Diversity = c.SimilarActive, c.Diversity
		}},
		{dirty.rq3, rq3, func(c *Results) {
			r.DependencySubgraphs, r.DependencyTargets = c.DependencySubgraphs, c.DependencyTargets
			r.DepCores, r.DepFronts, r.DependencyActive = c.DepCores, c.DepFronts, c.DependencyActive
		}},
		{dirty.rq4, rq4, func(c *Results) {
			r.CoexistSubgraphs, r.CoexistOps, r.CoexistActive = c.CoexistSubgraphs, c.CoexistOps, c.CoexistActive
			r.IoCs, r.TopDomains = c.IoCs, c.TopDomains
		}},
		{dirty.behaviors, behaviors, func(c *Results) { r.Behaviors = c.Behaviors }},
		{dirty.validation, validation, func(c *Results) { r.Validation = c.Validation }},
	} {
		if blk.dirty {
			tasks = append(tasks, blk.run)
		} else {
			blk.reuse(ep.base)
		}
	}
	if err := parallel.Do(tasks...); err != nil {
		return nil, err
	}

	// §VI-A — Table X (optional).
	if ep.cfg.Detection {
		if dirty.detection {
			det, err := detectionOf(ep.cfg, ep.graph, ep.cfg.DetectionIterations)
			if err != nil {
				return nil, err
			}
			r.Detection = det
		} else {
			r.Detection = ep.base.Detection
		}
	}
	return r, nil
}

// validationOf reproduces §IV-A: five 100-package samples scanned by the
// rule scanner, with scanner misses adjudicated against ground truth (the
// stand-in for the paper's manual reverse-engineering inspection).
func validationOf(cfg Config, w *world.World, dataset *collect.Result) ValidationRow {
	available := dataset.Available()
	artifacts := make([]*ecosys.Artifact, 0, len(available))
	for _, e := range available {
		artifacts = append(artifacts, e.Artifact)
	}
	sampleSize := 100
	if sampleSize > len(artifacts) {
		sampleSize = len(artifacts)
	}
	res := detect.ValidateSampling(artifacts, 5, sampleSize, func(a *ecosys.Artifact) bool {
		rec, ok := w.Record(a.Coord)
		return ok && rec != nil // every corpus member is ground-truth malware
	}, xrand.New(cfg.Seed).Derive("validation"))
	return ValidationRow{
		Experiments: res.Experiments, SampleSize: res.SampleSize,
		ScannerRate: res.ScannerRate(), VerifiedRate: res.VerifiedRate(),
	}
}

// detectionOf executes the Table X experiment on a graph view's NPM
// similar clusters.
func detectionOf(cfg Config, mg *core.MalGraph, iterations int) ([]DetectionRow, error) {
	clusters := npmClustersOf(mg)
	if len(clusters) < 4 {
		return nil, fmt.Errorf("malgraph: only %d NPM clusters; need ≥4 for Table X", len(clusters))
	}
	benignCount := int(3500 * cfg.Scale)
	if benignCount < 60 {
		benignCount = 60
	}
	benign := codegen.GenerateBenignPool(ecosys.NPM, benignCount, xrand.New(cfg.Seed).Derive("benign"))
	dcfg := detect.DefaultTableXConfig()
	dcfg.Iterations = iterations
	dcfg.Seed = cfg.Seed
	dcfg.ClustersPerIter = len(clusters) / 4
	if dcfg.ClustersPerIter < 2 {
		dcfg.ClustersPerIter = 2
	}
	rows, err := detect.RunTableX(clusters, benign, dcfg)
	if err != nil {
		return nil, fmt.Errorf("malgraph: table X: %w", err)
	}
	out := make([]DetectionRow, 0, len(rows))
	for _, row := range rows {
		out = append(out, DetectionRow{
			Algorithm:  row.Algorithm,
			AccWithout: row.AccWithout, AccWith: row.AccWith,
			RecallWithout: row.RecallWithout, RecallWith: row.RecallWith,
		})
	}
	return out, nil
}

// npmClustersOf returns a view's NPM similar clusters as artifact groups —
// the "tracked malware packages" §VI-A trains on.
func npmClustersOf(mg *core.MalGraph) [][]*ecosys.Artifact {
	var clusters [][]*ecosys.Artifact
	for _, cl := range mg.SimilarClusters[ecosys.NPM] {
		var arts []*ecosys.Artifact
		for _, id := range cl.Members {
			if e, ok := mg.EntryByNodeID(id); ok && e.Artifact != nil {
				arts = append(arts, e.Artifact)
			}
		}
		if len(arts) >= 2 {
			clusters = append(clusters, arts)
		}
	}
	return clusters
}
