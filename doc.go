// Package malgraph is a from-scratch Go reproduction of "An Analysis of
// Malicious Packages in Open-Source Software in the Wild" (DSN 2025): the
// MALGRAPH knowledge graph over an OSS-malware corpus, the §II-B collection
// pipeline that builds the corpus from ten online sources and lagging
// registry mirrors, and every analysis of §V–§VI (overlap, missing rates,
// diversity, dependent-hidden attacks, malware context, diversity-aware
// detection).
//
// The paper's unreleasable inputs (live malware, commercial feeds, the
// public web) are replaced by a deterministic simulated world calibrated to
// the paper's published tables; every pipeline stage — hashing, embedding,
// clustering, regex dependency extraction, crawling, IoC parsing, model
// training — runs on genuine artifacts exactly as it would on real data.
//
// Quick start:
//
//	results, err := malgraph.Run(malgraph.Config{Scale: 0.05})
//	if err != nil { ... }
//	results.Render(os.Stdout)
//
// Scale 1.0 reproduces the paper-size corpus (≈24k packages); 0.05 builds a
// ≈1.2k-package world in about a second.
//
// Beyond the one-shot reproduction, the package runs as a streaming service:
// the §II-B collection layer is continuous in the real world, so core.Engine
// ingests (entries, reports) batches incrementally — duplicated, dependency,
// similar and co-existing edges are maintained through persistent indexes,
// and only ecosystems whose artifact set changed re-cluster. Ingesting the
// corpus in any batch partition yields components and analyses identical to
// a one-shot build.
//
//	p, _ := malgraph.NewStreamingPipeline(ctx, malgraph.Config{Scale: 0.05}, 10)
//	for {
//	    if _, ok, _ := p.AppendNext(); !ok { break }  // replay the timeline
//	    res, _ := p.Analyze()                          // only dirty RQ blocks recompute
//	    _ = res
//	}
//
// `malgraphctl serve` exposes the same loop over HTTP (ingest, graph queries,
// results, snapshot-based warm restarts). See README.md for the architecture
// diagram and benchmark instructions.
package malgraph
