package malgraph

// Segmented checkpoints: with a content-addressed store attached, the
// pipeline's engine checkpoints as a small manifest (written wherever the
// snapshot used to go — same atomic-rename and WAL-truncation contracts)
// plus delta chunks in the store, so checkpoint cost tracks the ingest
// delta instead of the corpus. See internal/castore and core snapshot v5.

import (
	"fmt"
	"io"

	"malgraph/internal/castore"
	"malgraph/internal/core"
)

// AttachStore routes every future engine checkpoint through the segmented
// v5 path backed by st and starts delta tracking. Attach before the first
// Checkpoint; the first checkpoint after attaching writes the full state
// into the store (later ones write only what changed).
func (p *Pipeline) AttachStore(st *castore.Store) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Engine.AttachStore(st)
}

// Store returns the engine's attached content store, or nil.
func (p *Pipeline) Store() *castore.Store {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Engine.Store()
}

// LiveRefs returns every store blob the engine's current manifest state
// references — the input to compaction, which additionally unions the refs
// of retained (archived) manifests before sweeping.
func (p *Pipeline) LiveRefs() map[string]bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.Engine.LiveRefs()
}

// RestoreEngineWithStore is RestoreEngine for store-backed checkpoints: a
// v5 manifest resolves its chunk references against st, and a monolithic
// v3/v4 snapshot restores as before and then has the store attached (the
// upgrade path — its first checkpoint re-bases everything into the store).
// Either way the pipeline keeps checkpointing segmentedly afterwards.
func (p *Pipeline) RestoreEngineWithStore(r io.Reader, st *castore.Store) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	eng, err := core.RestoreEngineWithStore(r, st)
	if err != nil {
		return fmt.Errorf("malgraph: restore: %w", err)
	}
	p.adoptEngineLocked(eng)
	return nil
}
