package malgraph

// Tests for the external ingest path (ISSUE 3): raw observations resolved
// through Pipeline.AppendExternal, in any batch partition, must yield
// Results bit-identical to a one-shot Build of the same world — the same
// determinism contract the feed replay satisfies, now starting from the raw
// scheduler records an external publisher would POST instead of from
// pre-resolved entries.

import (
	"context"
	"fmt"
	"testing"

	"malgraph/internal/collect"
	"malgraph/internal/xrand"
)

// TestExternalObservationsMatchOneShot delivers the world's raw observation
// stream through AppendExternal in shuffled partitions of k batches.
// Shuffling at observation (not entry) granularity splits coordinates
// mid-merge across batches — a source-carried artifact may arrive after the
// entry was already created from name-only observations, or after a mirror
// recovery — exercising the resolver's telescoping accounting and the
// availability-upgrade merge.
func TestExternalObservationsMatchOneShot(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	const scale = 0.05
	batch, want := oneShot(t, scale)

	for _, k := range []int{1, 3, 10} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			p, err := NewStreamingPipeline(context.Background(), Config{Scale: scale}, 1)
			if err != nil {
				t.Fatal(err)
			}
			obs := collect.ObservationsFromSources(p.World.Sources)
			if len(obs) == 0 {
				t.Fatal("world produced no observations")
			}
			rng := xrand.New(uint64(2000 + k))
			for i := len(obs) - 1; i > 0; i-- {
				j := int(rng.Uint64() % uint64(i+1))
				obs[i], obs[j] = obs[j], obs[i]
			}
			_, reportCorpus := p.Source()
			for bi := 0; bi < k; bi++ {
				lo, hi := bi*len(obs)/k, (bi+1)*len(obs)/k
				rlo, rhi := bi*len(reportCorpus)/k, (bi+1)*len(reportCorpus)/k
				if _, _, err := p.AppendExternal(obs[lo:hi], reportCorpus[rlo:rhi]); err != nil {
					t.Fatalf("append external batch %d: %v", bi, err)
				}
			}
			got, err := p.Analyze()
			if err != nil {
				t.Fatal(err)
			}
			assertComponentsEqual(t, p.Graph, batch.Graph, fmt.Sprintf("external k=%d", k))
			assertResultsEqual(t, got, want, fmt.Sprintf("external k=%d", k))
		})
	}
}

// TestExternalDuplicateDeliveryIdempotent re-POSTs the same observations:
// the second delivery must change nothing — neither the dataset, nor the
// per-source accounting, nor the graph.
func TestExternalDuplicateDeliveryIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline build")
	}
	p, err := NewStreamingPipeline(context.Background(), Config{Scale: 0.02}, 1)
	if err != nil {
		t.Fatal(err)
	}
	obs := collect.ObservationsFromSources(p.World.Sources)
	if _, _, err := p.AppendExternal(obs, nil); err != nil {
		t.Fatal(err)
	}
	before := p.Stats()
	perSource := make(map[string]collect.SourceStats)
	for id, st := range p.Dataset.PerSource {
		perSource[id.String()] = st
	}
	st, _, err := p.AppendExternal(obs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NewEntries != 0 || st.UpdatedEntries != 0 || st.NewArtifacts != 0 {
		t.Fatalf("duplicate delivery changed the dataset: %+v", st)
	}
	after := p.Stats()
	if before.Entries != after.Entries || before.Edges != after.Edges || before.Nodes != after.Nodes {
		t.Fatalf("duplicate delivery changed the graph: %+v vs %+v", before, after)
	}
	for id, st := range p.Dataset.PerSource {
		if perSource[id.String()] != st {
			t.Fatalf("duplicate delivery changed %s accounting: %+v vs %+v", id, perSource[id.String()], st)
		}
	}
}
