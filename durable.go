package malgraph

// Durable ingest: the pipeline journals every accepted batch — the exact
// wire shapes serve receives — to a write-ahead log before the engine
// applies it, and recovery is last snapshot + journal suffix. Because the
// PR 2/3 equivalence contract makes any batch partition of the corpus
// yield identical Results, replaying the journal is just another
// partition: the recovered engine is bit-identical to one that never died.
//
// Journal record kinds:
//
//	"external"  {"observations":[...],"reports":[...]} — an AppendExternal
//	            delivery, journaled after validation/resolution succeeds
//	            (only accepted batches are journaled) and before apply.
//	"feed"      {"index":N} — the Nth batch of the deterministic simulated
//	            feed. The feed is re-derived from the run configuration on
//	            restart, so only the position is journaled.
//
// Sequence gating makes replay exactly-once on top of at-least-once
// delivery: a snapshot carries the last applied sequence (engine
// AppliedSeq, snapshot v4), and records at or below it are skipped. This
// also makes journal truncation after a checkpoint safe without any
// atomicity between the two files — a stale record that survives a lost
// truncate replays as a no-op.

import (
	"encoding/json"
	"fmt"
	"io"

	"malgraph/internal/collect"
	"malgraph/internal/reports"
	"malgraph/internal/wal"
)

const (
	recExternal = "external"
	recFeed     = "feed"
)

// externalRecord is the journaled wire shape of an AppendExternal call:
// the raw observations (resolution re-runs deterministically on replay, at
// the world's fixed collection instant) and the parsed accepted reports.
type externalRecord struct {
	Observations []collect.Observation `json:"observations,omitempty"`
	Reports      []*reports.Report     `json:"reports,omitempty"`
}

// feedRecord journals one simulated-feed ingest by position.
type feedRecord struct {
	Index int `json:"index"`
}

// AttachJournal makes every future accepted ingest journal-before-apply
// through l. The journal's sequence counter is raised to the pipeline's
// last applied sequence, so post-attach appends sort after everything a
// restored snapshot already covers. Attach after ReplayJournal when
// recovering.
func (p *Pipeline) AttachJournal(l *wal.Log) {
	p.mu.Lock()
	defer p.mu.Unlock()
	l.EnsureSeq(p.lastSeq)
	p.journal = l
}

// LastSeq returns the durable sequence of the last accepted ingest — the
// number serve hands back to publishers so push can resume idempotently.
func (p *Pipeline) LastSeq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastSeq
}

// journalLocked appends one record (fsync'd) and returns its sequence
// number without touching lastSeq: the caller commits the sequence only
// after the engine apply succeeds, so a snapshot's AppliedSeq stamp never
// claims a record the engine does not reflect. (A journaled-but-unapplied
// record keeps its burned sequence above the stamp and is re-applied on
// replay instead of being silently skipped.) With no journal attached the
// next sequence is just counted, so serve without -wal still hands out
// monotonic (just not durable) sequence numbers.
func (p *Pipeline) journalLocked(kind string, v any) (uint64, error) {
	if p.journal == nil {
		return p.lastSeq + 1, nil
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("malgraph: journal %s: %w", kind, err)
	}
	seq, err := p.journal.Append(kind, payload)
	if err != nil {
		return 0, fmt.Errorf("malgraph: journal %s: %w", kind, err)
	}
	return seq, nil
}

// Checkpoint couples "snapshot the engine" with "truncate the journal"
// under the pipeline lock: no concurrent ingest can journal a record
// between the snapshot's AppliedSeq stamp and the truncation, so the
// truncate never destroys an acknowledged record the snapshot does not
// contain. persist receives the engine snapshot writer and is responsible
// for making the bytes durable (serve wraps it in an fsync'd atomic file
// replace); the journal is truncated only after persist returns success.
// Returns the sequence the snapshot was stamped with.
func (p *Pipeline) Checkpoint(persist func(snapshot func(io.Writer) error) error) (uint64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := persist(p.snapshotEngineLocked); err != nil {
		return p.lastSeq, err
	}
	if p.journal != nil {
		if err := p.journal.Reset(); err != nil {
			return p.lastSeq, err
		}
	}
	return p.lastSeq, nil
}

// ReplayJournal re-applies the journal's intact records to the engine,
// skipping everything the restored snapshot already contains (sequence ≤
// the snapshot's AppliedSeq stamp). Feed records always advance the feed
// position — a snapshotted feed batch is in the engine but the in-memory
// cursor restarts at zero — and records above the stamp are re-applied
// through the same code paths as live ingest, without re-journaling.
// Returns the number of records re-applied.
func (p *Pipeline) ReplayJournal(l *wal.Log) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	applied := 0
	restored := p.lastSeq
	err := l.Replay(0, func(rec wal.Record) error {
		switch rec.Kind {
		case recFeed:
			var fr feedRecord
			if err := json.Unmarshal(rec.Payload, &fr); err != nil {
				return fmt.Errorf("malgraph: replay seq %d: decode feed record: %w", rec.Seq, err)
			}
			if fr.Index < 0 || fr.Index >= len(p.feed) {
				return fmt.Errorf("malgraph: replay seq %d: feed index %d outside feed of %d batches (was the serve configuration changed?)",
					rec.Seq, fr.Index, len(p.feed))
			}
			if fr.Index+1 > p.fed {
				p.fed = fr.Index + 1
			}
			if rec.Seq > restored {
				if _, err := p.appendLocked(p.feed[fr.Index]); err != nil {
					return fmt.Errorf("malgraph: replay seq %d: %w", rec.Seq, err)
				}
			}
		case recExternal:
			if rec.Seq <= restored {
				return nil
			}
			var er externalRecord
			if err := json.Unmarshal(rec.Payload, &er); err != nil {
				return fmt.Errorf("malgraph: replay seq %d: decode external record: %w", rec.Seq, err)
			}
			if _, err := p.appendExternalLocked(er.Observations, er.Reports, false); err != nil {
				return fmt.Errorf("malgraph: replay seq %d: %w", rec.Seq, err)
			}
		default:
			return fmt.Errorf("malgraph: replay seq %d: unknown record kind %q", rec.Seq, rec.Kind)
		}
		if rec.Seq > restored {
			applied++
		}
		if rec.Seq > p.lastSeq {
			p.lastSeq = rec.Seq
		}
		return nil
	})
	if err != nil {
		return applied, err
	}
	l.EnsureSeq(p.lastSeq)
	// One publish covers the whole replay: recovered state becomes visible
	// to lock-free readers at the recovered batch boundary.
	p.publishLocked()
	return applied, nil
}
